//! `BENCH_PR2.json` — the harness's perf trajectory, tracked from PR 2 on.
//!
//! Each record times one figure-shaped sweep twice through
//! [`tlb_simnet::run_all`]: pinned to a single thread (the serial
//! baseline) and on the full pool. Reports carry the thread count and the
//! host's core count so a 1-core CI runner's speedup ≈ 1.0 is
//! distinguishable from a regression on a multi-core box. The emitter also
//! cross-checks that serial and parallel runs produced identical results —
//! a free end-to-end determinism audit on every perf run.

use tlb_simnet::RunReport;

/// Timing of one named sweep, serial vs parallel.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct PerfEntry {
    /// Which figure-shaped sweep (e.g. `fig10_web_search`).
    pub sweep: String,
    /// Number of independent simulation jobs in the batch.
    pub jobs: usize,
    /// Wall-clock of the single-threaded run (milliseconds).
    pub serial_ms: f64,
    /// Wall-clock of the pooled run (milliseconds).
    pub parallel_ms: f64,
    /// `serial_ms / parallel_ms`.
    pub speedup: f64,
}

/// The whole `BENCH_PR2.json` document.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct PerfReport {
    /// Format tag for downstream tooling.
    pub schema: String,
    /// `quick` or `full` (`TLB_SCALE`).
    pub scale: String,
    /// Base RNG seed of the timed sweeps.
    pub seed: u64,
    /// Pool threads the parallel runs used.
    pub threads: usize,
    /// `available_parallelism()` of the host.
    pub host_cores: usize,
    /// Per-sweep timings.
    pub entries: Vec<PerfEntry>,
    /// Sum of serial wall-clocks (milliseconds).
    pub total_serial_ms: f64,
    /// Sum of parallel wall-clocks (milliseconds).
    pub total_parallel_ms: f64,
    /// `total_serial_ms / total_parallel_ms`.
    pub overall_speedup: f64,
}

impl PerfReport {
    /// An empty report stamped with this process's scale/seed/thread setup.
    pub fn new() -> PerfReport {
        PerfReport {
            schema: "tlb-bench-pr2/v1".to_string(),
            scale: match crate::Scale::from_env() {
                crate::Scale::Quick => "quick",
                crate::Scale::Full => "full",
            }
            .to_string(),
            seed: crate::scale::base_seed(),
            threads: rayon::current_num_threads(),
            host_cores: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            entries: Vec::new(),
            total_serial_ms: 0.0,
            total_parallel_ms: 0.0,
            overall_speedup: 1.0,
        }
    }

    /// Time `build_jobs()`'s batch serially and on the pool, verify the two
    /// runs agree, and append the timing entry. Returns the parallel run's
    /// reports for optional further inspection.
    pub fn time_sweep(
        &mut self,
        sweep: &str,
        build_jobs: impl Fn() -> Vec<(tlb_simnet::SimConfig, Vec<tlb_workload::FlowSpec>)>,
    ) -> Vec<RunReport> {
        let jobs = build_jobs().len();

        let t0 = std::time::Instant::now();
        let serial = rayon::with_threads(1, || tlb_simnet::run_all(build_jobs()));
        let serial_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t1 = std::time::Instant::now();
        let parallel = rayon::with_threads(self.threads, || tlb_simnet::run_all(build_jobs()));
        let parallel_ms = t1.elapsed().as_secs_f64() * 1e3;

        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(
                (a.events, a.drops, a.marks, a.completed),
                (b.events, b.drops, b.marks, b.completed),
                "{sweep}: parallel run diverged from serial — determinism bug"
            );
            assert_eq!(a.fct_short.afct.to_bits(), b.fct_short.afct.to_bits());
        }

        self.entries.push(PerfEntry {
            sweep: sweep.to_string(),
            jobs,
            serial_ms,
            parallel_ms,
            speedup: if parallel_ms > 0.0 {
                serial_ms / parallel_ms
            } else {
                1.0
            },
        });
        self.total_serial_ms += serial_ms;
        self.total_parallel_ms += parallel_ms;
        if self.total_parallel_ms > 0.0 {
            self.overall_speedup = self.total_serial_ms / self.total_parallel_ms;
        }
        parallel
    }

    /// Write the report to `results/BENCH_PR2.json` (pretty-printed) and
    /// return the path.
    pub fn save(&self) -> std::path::PathBuf {
        let dir = crate::out::results_dir();
        let path = dir.join("BENCH_PR2.json");
        let json = serde_json::to_string_pretty(self).expect("serialize perf report");
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
        } else if let Err(e) = std::fs::write(&path, json) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        } else {
            eprintln!("[saved {}]", path.display());
        }
        path
    }
}

impl Default for PerfReport {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlb_engine::SimRng;
    use tlb_simnet::{Scheme, SimConfig};
    use tlb_workload::{basic_mix, BasicMixConfig};

    fn tiny_jobs() -> Vec<(SimConfig, Vec<tlb_workload::FlowSpec>)> {
        (0..4u64)
            .map(|seed| {
                let mut cfg = SimConfig::basic_paper(Scheme::Ecmp);
                cfg.seed = seed;
                let mut mix = BasicMixConfig::paper_default();
                mix.n_short = 5;
                mix.n_long = 0;
                let flows = basic_mix(&cfg.topo, &mix, &mut SimRng::new(seed));
                (cfg, flows)
            })
            .collect()
    }

    #[test]
    fn time_sweep_records_and_verifies() {
        let mut report = PerfReport::new();
        let out = report.time_sweep("selftest", tiny_jobs);
        assert_eq!(out.len(), 4);
        assert_eq!(report.entries.len(), 1);
        let e = &report.entries[0];
        assert_eq!(e.jobs, 4);
        assert!(e.serial_ms > 0.0 && e.parallel_ms > 0.0);
        assert!(report.total_serial_ms >= e.serial_ms);
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut report = PerfReport::new();
        report.entries.push(PerfEntry {
            sweep: "fig10_web_search".into(),
            jobs: 20,
            serial_ms: 1000.0,
            parallel_ms: 250.0,
            speedup: 4.0,
        });
        report.total_serial_ms = 1000.0;
        report.total_parallel_ms = 250.0;
        report.overall_speedup = 4.0;
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: PerfReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema, "tlb-bench-pr2/v1");
        assert_eq!(back.entries.len(), 1);
        assert_eq!(back.entries[0].sweep, "fig10_web_search");
        assert_eq!(back.entries[0].speedup, 4.0);
        assert_eq!(back.host_cores, report.host_cores);
    }
}
