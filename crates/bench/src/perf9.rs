//! `BENCH_PR9.json` — deterministic multi-core execution of one large
//! simulation, measured. Tracked from PR 9 on.
//!
//! One fig10-scale job (the §6.2 web-search fabric: 8 ToR × 8 core,
//! 256 hosts, 1 Gbit/s, DCTCP, Poisson arrivals at 0.7 load) is run once
//! on the serial engine and once per sharded worker count. Two claims:
//!
//! * **Bit-identical results** — every leg's digest (events, FCT
//!   statistics, drops, marks, completions) must match the serial
//!   reference exactly, for every worker count. This is the same
//!   contract `tests/determinism.rs` pins on small jobs, demonstrated at
//!   figure scale. Asserted whenever `TLB_BENCH_ASSERT=1`, on any host.
//! * **Throughput scaling** — events/s at 4 workers must reach ≥ 2× the
//!   serial engine. Gated only on hosts with ≥ 4 cores (the digest half
//!   of the contract is machine-independent; the speedup half is not).

use tlb_engine::{EngineKind, SimRng, SimTime};
use tlb_simnet::{RunReport, Scheme, SimConfig, Simulation};
use tlb_workload::{web_search, FlowSpec, PoissonWorkload};

/// One timed engine leg on the shared fig10-scale job.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct EngineEntry {
    /// `serial` or `sharded`.
    pub engine: String,
    /// Worker threads requested (0 for the serial leg).
    pub workers_requested: u32,
    /// Worker threads the engine actually ran (`RunReport::engine_workers`;
    /// 0 when the run was serial, including silent fallback — the assert
    /// gate treats fallback on a sharded leg as a failure).
    pub workers: u32,
    /// Flows launched.
    pub flows: usize,
    /// Flows completed.
    pub completed: usize,
    /// Engine events processed.
    pub events: u64,
    /// Wall-clock (milliseconds).
    pub wall_ms: f64,
    /// `events / wall`.
    pub events_per_sec: f64,
    /// Parallel windows the conservative protocol opened (0 for serial).
    pub sharded_windows: u64,
    /// Determinism digest; every leg must agree with the serial leg.
    pub digest: String,
}

/// The whole `BENCH_PR9.json` document.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Pr9Report {
    /// Format tag for downstream tooling (`tlb-bench-pr9/v1`).
    pub schema: String,
    /// `quick` or `full` (`TLB_SCALE`).
    pub scale: String,
    /// Base RNG seed of the job.
    pub seed: u64,
    /// `available_parallelism()` of the host — the ≥ 2× speedup gate
    /// only applies when this is ≥ 4.
    pub host_cores: usize,
    /// Serial leg first, then one sharded leg per worker count.
    pub runs: Vec<EngineEntry>,
    /// Sharded-at-4-workers events/s ÷ serial events/s.
    pub speedup_4w: f64,
    /// Every leg produced the serial digest.
    pub digests_identical: bool,
}

/// The shared fig10-scale job: §6.2 web-search fabric under Poisson
/// arrivals. Only `engine` differs between legs — flows, seed and every
/// other knob are bitwise identical so the digests are comparable.
pub fn fig10_job(engine: EngineKind, duration: SimTime) -> (SimConfig, Vec<FlowSpec>) {
    let mut cfg = SimConfig::large_scale(Scheme::tlb_default(), 32);
    cfg.engine = engine;
    cfg.audit = false;
    let dist = web_search();
    let wl = PoissonWorkload {
        load: 0.7,
        dist: &dist,
        duration,
        deadline_lo: SimTime::from_millis(5),
        deadline_hi: SimTime::from_millis(25),
        short_threshold: 100_000,
        inter_leaf_only: true,
    };
    let flows = wl.generate(&cfg.topo, &mut SimRng::new(crate::scale::base_seed()));
    (cfg, flows)
}

/// Determinism digest of a run: the same fields
/// `tests/determinism.rs` compares (event count, FCT statistics, drops,
/// marks, completions), folded into one comparable string.
pub fn digest(r: &RunReport) -> String {
    format!(
        "{}|{:.12}|{:.12}|{}|{}|{}",
        r.events, r.fct_short.afct, r.fct_long.mean_goodput, r.drops, r.marks, r.completed
    )
}

/// Run one engine leg and fold it into an [`EngineEntry`].
pub fn engine_leg(engine: EngineKind, duration: SimTime) -> EngineEntry {
    let (name, requested) = match engine {
        EngineKind::Serial => ("serial", 0),
        EngineKind::Sharded { workers } => ("sharded", workers.unwrap_or(0)),
    };
    let (cfg, flows) = fig10_job(engine, duration);
    let n = flows.len();
    let t0 = std::time::Instant::now();
    let r = Simulation::new(cfg, flows).run();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    EngineEntry {
        engine: name.to_string(),
        workers_requested: requested,
        workers: r.engine_workers.unwrap_or(0),
        flows: n,
        completed: r.completed,
        events: r.events,
        wall_ms,
        events_per_sec: r.events as f64 / (wall_ms / 1e3).max(1e-9),
        sharded_windows: r.sharded_windows,
        digest: digest(&r),
    }
}

impl Pr9Report {
    /// An empty report stamped with this process's scale/seed/cores.
    pub fn new() -> Pr9Report {
        Pr9Report {
            schema: "tlb-bench-pr9/v1".to_string(),
            scale: match crate::Scale::from_env() {
                crate::Scale::Quick => "quick",
                crate::Scale::Full => "full",
            }
            .to_string(),
            seed: crate::scale::base_seed(),
            host_cores: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            runs: Vec::new(),
            speedup_4w: 1.0,
            digests_identical: false,
        }
    }

    /// Write the report to `results/BENCH_PR9.json` (pretty-printed) and
    /// return the path.
    pub fn save(&self) -> std::path::PathBuf {
        let dir = crate::out::results_dir();
        let path = dir.join("BENCH_PR9.json");
        let json = serde_json::to_string_pretty(self).expect("serialize perf report");
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
        } else if let Err(e) = std::fs::write(&path, json) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        } else {
            eprintln!("[saved {}]", path.display());
        }
        path
    }
}

impl Default for Pr9Report {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_json() {
        let mut r = Pr9Report::new();
        r.runs.push(EngineEntry {
            engine: "sharded".into(),
            workers_requested: 4,
            workers: 4,
            flows: 3000,
            completed: 3000,
            events: 50_000_000,
            wall_ms: 900.0,
            events_per_sec: 5.6e7,
            sharded_windows: 40_000,
            digest: "50000000|1.2|3.4|0|12|3000".into(),
        });
        r.speedup_4w = 2.4;
        r.digests_identical = true;
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: Pr9Report = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema, "tlb-bench-pr9/v1");
        assert_eq!(back.runs[0].workers, 4);
        assert!(back.digests_identical);
    }

    #[test]
    fn job_is_identical_across_engines() {
        let (_, a) = fig10_job(EngineKind::Serial, SimTime::from_millis(2));
        let (_, b) = fig10_job(
            EngineKind::Sharded { workers: Some(4) },
            SimTime::from_millis(2),
        );
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.size_bytes == y.size_bytes && x.start == y.start));
    }
}
