//! Fig. 5 (the paper's queueing-process schematic), demonstrated with real
//! data: sample the sender rack's uplink queues over time under TLB and
//! show the separation — the long flows hold a few queues while the short
//! flows flit across the empty ones — versus ECMP, where short flows get
//! stuck behind whichever queue their hash picked.

use tlb_bench::{Out, Scale};
use tlb_engine::{SimRng, SimTime};
use tlb_simnet::{RunReport, Scheme, SimConfig, Simulation};
use tlb_workload::{sustained_mix, BasicMixConfig};

fn run_sampled(scheme: Scheme, rounds: usize, seed: u64) -> RunReport {
    let mut cfg = SimConfig::basic_paper(scheme);
    cfg.sample_queues = true;
    cfg.series_bucket = SimTime::from_micros(250);
    let mut mix = BasicMixConfig::paper_default();
    mix.n_short = 100;
    mix.n_long = 3;
    let (flows, next) = sustained_mix(&cfg.topo, &mix, rounds, &mut SimRng::new(seed));
    Simulation::new_chained(cfg, flows, next).run()
}

/// Summarize one occupancy snapshot as sorted queue lengths.
fn profile(lens: &[u32]) -> String {
    let mut v: Vec<u32> = lens.to_vec();
    v.sort_unstable_by(|a, b| b.cmp(a));
    let busy = v.iter().filter(|&&l| l > 0).count();
    format!("busy {busy:>2}/15  top queues {:?}", &v[..5.min(v.len())])
}

fn main() {
    let scale = Scale::from_env();
    let rounds = scale.pick(12, 30);
    let seed = tlb_bench::scale::base_seed();
    let mut out = Out::new("fig05");
    out.line("Fig. 5 — the queueing process, measured (leaf-0 uplink occupancy)");
    out.line("  sustained 100 short + 3 long flows; snapshots every 250 us");
    out.blank();

    for scheme in [
        Scheme::Ecmp,
        Scheme::letflow_default(),
        Scheme::tlb_default(),
    ] {
        let r = run_sampled(scheme, rounds, seed);
        out.line(&format!("{}:", r.scheme));
        // Restrict to the active phase (some queue non-empty): the chained
        // workload drains near the end and idle snapshots say nothing.
        let active: Vec<&(f64, Vec<u32>)> = r
            .queue_series
            .iter()
            .filter(|(_, lens)| lens.iter().any(|&l| l > 0))
            .collect();
        let n = active.len();
        for &i in &[n / 4, n / 2, 3 * n / 4] {
            let (t, lens) = active[i.min(n.saturating_sub(1))];
            out.line(&format!("  t={:>6.2}ms  {}", t * 1e3, profile(lens)));
        }
        // Occupancy statistics over the active phase.
        let mut spreads = Vec::new();
        let mut peaks = Vec::new();
        for (_, lens) in &active {
            let max = *lens.iter().max().unwrap_or(&0) as f64;
            let mean = lens.iter().sum::<u32>() as f64 / lens.len() as f64;
            peaks.push(max);
            spreads.push(max - mean);
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        out.line(&format!(
            "  avg peak queue {:.1} pkts, avg (peak - mean) spread {:.1} pkts",
            avg(&peaks),
            avg(&spreads)
        ));
        out.blank();
    }
    out.line("expected shape: ECMP concentrates (high peaks, big spread while");
    out.line("other queues idle); TLB keeps the long flows' queues bounded and");
    out.line("the rest shallow for the shorts.");
    out.save();
}
