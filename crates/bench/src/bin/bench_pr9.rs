//! `BENCH_PR9.json` emitter: the sharded multi-core engine, measured
//! (see `tlb_bench::perf9` for the leg definitions).
//!
//! ```sh
//! cargo run --release -p tlb-bench --bin bench_pr9              # quick
//! TLB_SCALE=full TLB_BENCH_ASSERT=1 \
//!     cargo run --release -p tlb-bench --bin bench_pr9
//! ```
//!
//! One fig10-scale web-search job, run serial and then sharded at 2, 4
//! and 8 workers. Digest equality is asserted on every host under
//! `TLB_BENCH_ASSERT=1`; the ≥ 2× events/s gate at 4 workers applies
//! only when the host has ≥ 4 cores (a 1-core box still proves the
//! digests, it just can't prove scaling). Output:
//! `results/BENCH_PR9.json` (schema `tlb-bench-pr9/v1`).

use tlb_bench::perf9::{self, EngineEntry, Pr9Report};
use tlb_bench::Scale;
use tlb_engine::{EngineKind, SimTime};

fn print_entry(e: &EngineEntry) {
    println!(
        "  {:<7} {:>2} worker(s)  {:>6} flows  {:>11} events  {:>8.0} ms  \
         {:>10.0} ev/s  {:>7} windows",
        e.engine, e.workers, e.flows, e.events, e.wall_ms, e.events_per_sec, e.sharded_windows
    );
}

fn main() {
    let mut report = Pr9Report::new();
    println!(
        "bench_pr9: {} scale, seed {}, {} host core(s)",
        report.scale, report.seed, report.host_cores
    );

    let duration = match Scale::from_env() {
        Scale::Full => SimTime::from_millis(150),
        Scale::Quick => SimTime::from_millis(25),
    };
    let worker_counts = [2u32, 4, 8];
    let reps: usize = std::env::var("TLB_BENCH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&r| r >= 1)
        .unwrap_or(1);

    // Best wall-clock per leg over the reps; digests must agree across
    // every run of every leg, so any rep's digest is "the" digest.
    let mut best: Vec<Option<EngineEntry>> = vec![None; 1 + worker_counts.len()];
    for rep in 0..reps {
        let mut legs = vec![perf9::engine_leg(EngineKind::Serial, duration)];
        for &w in &worker_counts {
            legs.push(perf9::engine_leg(
                EngineKind::Sharded { workers: Some(w) },
                duration,
            ));
        }
        if reps > 1 {
            println!(
                "  rep {}/{reps}: serial {:>8.0} ms / sharded@4 {:>8.0} ms",
                rep + 1,
                legs[0].wall_ms,
                legs[2].wall_ms
            );
        }
        for (slot, leg) in best.iter_mut().zip(legs) {
            assert_eq!(
                slot.as_ref().map_or(&leg.digest, |b| &b.digest),
                &leg.digest,
                "digest drifted between reps of the same leg"
            );
            if slot.as_ref().is_none_or(|b| leg.wall_ms < b.wall_ms) {
                *slot = Some(leg);
            }
        }
    }
    let runs: Vec<EngineEntry> = best.into_iter().map(|b| b.unwrap()).collect();
    for e in &runs {
        print_entry(e);
    }

    let serial = &runs[0];
    report.digests_identical = runs.iter().all(|e| e.digest == serial.digest);
    let at4 = runs
        .iter()
        .find(|e| e.workers_requested == 4)
        .expect("4-worker leg present");
    report.speedup_4w = at4.events_per_sec / serial.events_per_sec.max(1e-9);
    println!(
        "digests {}; speedup at 4 workers {:.2}x ({} host core(s))",
        if report.digests_identical {
            "identical"
        } else {
            "DIVERGED"
        },
        report.speedup_4w,
        report.host_cores
    );

    if std::env::var("TLB_BENCH_ASSERT").as_deref() == Ok("1") {
        assert!(
            report.digests_identical,
            "sharded digests diverged from serial — see results/BENCH_PR9.json"
        );
        assert_eq!(
            serial.completed, serial.flows,
            "the fig10-scale job stranded flows"
        );
        for e in runs.iter().skip(1) {
            assert_eq!(
                e.workers, e.workers_requested,
                "sharded leg fell back to serial ({} of {} workers)",
                e.workers, e.workers_requested
            );
            assert!(
                e.sharded_windows > 0,
                "sharded leg at {} workers opened no parallel windows",
                e.workers_requested
            );
        }
        if report.host_cores >= 4 {
            assert!(
                report.speedup_4w >= 2.0,
                "sharded engine at 4 workers reached only {:.2}x serial \
                 events/s on a {}-core host (>= 2x required) — see \
                 results/BENCH_PR9.json",
                report.speedup_4w,
                report.host_cores
            );
        } else {
            println!(
                "TLB_BENCH_ASSERT: speedup gate skipped ({} host core(s) < 4)",
                report.host_cores
            );
        }
        println!("TLB_BENCH_ASSERT: digest identity and scaling bounds hold");
    }

    report.runs = runs;
    report.save();
}
