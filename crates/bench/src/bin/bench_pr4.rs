//! `BENCH_PR4.json` emitter: future-event-list backend comparison
//! (calendar queue vs the reference binary heap), micro and macro.
//!
//! ```sh
//! cargo run --release -p tlb-bench --bin bench_pr4              # quick
//! TLB_BENCH_ASSERT=1 cargo run --release -p tlb-bench --bin bench_pr4
//! ```
//!
//! The micro section holds an [`tlb_engine::EventQueue`] at fixed depths
//! (1e2 … 1e6) and measures pop+push pairs/second per backend, with the
//! popped streams checksummed and cross-checked. The macro section runs the
//! fig10-style quick sweep end-to-end per backend (same traffic, same
//! thread count, same process) and compares events/second; per-job report
//! digests must match bit-for-bit. Output: `results/BENCH_PR4.json`
//! (schema `tlb-bench-pr4/v1`).

use tlb_bench::perf4::{self, Pr4Report, MICRO_DEPTHS};
use tlb_engine::FelKind;

fn main() {
    let mut report = Pr4Report::new();
    println!(
        "bench_pr4: {} scale, {} pool thread(s), {} host core(s)",
        report.scale, report.threads, report.host_cores
    );

    // --- micro: hold pattern per backend per depth -----------------------
    println!("micro: hold pattern, pop+push pairs/sec by held depth");
    for &depth in &MICRO_DEPTHS {
        // Fewer pairs at the big depths: the prefill dominates runtime there
        // and the per-pair cost is what we measure, not the fill.
        let pairs: u64 = match depth {
            d if d >= 1_000_000 => 200_000,
            d if d >= 100_000 => 500_000,
            _ => 1_000_000,
        };
        let cal = perf4::micro_hold(FelKind::Calendar, depth, pairs, report.seed);
        let heap = perf4::micro_hold(FelKind::Heap, depth, pairs, report.seed);
        assert_eq!(
            cal.checksum, heap.checksum,
            "FEL backends popped different streams at depth {depth} — determinism bug"
        );
        println!(
            "  depth {:>9}: calendar {:>12.0} pairs/s   heap {:>12.0} pairs/s   ({:.2}x)",
            depth,
            cal.pairs_per_sec,
            heap.pairs_per_sec,
            cal.pairs_per_sec / heap.pairs_per_sec.max(1.0)
        );
        report.micro.push(cal);
        report.micro.push(heap);
    }

    // --- macro: fig10-style sweep per backend ----------------------------
    // Untimed warmup so neither timed leg pays first-touch costs (page
    // faults, lazy allocator arenas) alone.
    println!("macro: fig10-style quick sweep per backend (same traffic, same threads)");
    {
        let mut warm = perf4::macro_jobs(FelKind::Calendar);
        warm.truncate(1);
        let _ = rayon::with_threads(report.threads, || tlb_simnet::run_all(warm));
    }

    // Alternate the legs and keep each backend's best of `reps`
    // (TLB_BENCH_REPS, default 3): each leg is ~10 s of identical
    // deterministic work, so the minimum wall-clock is the least-noise
    // estimate and alternation cancels drift (thermal, noisy neighbors)
    // that would otherwise bias whichever backend ran last.
    let reps: usize = std::env::var("TLB_BENCH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&r| r >= 1)
        .unwrap_or(3);
    let mut heap_entry = None;
    let mut cal_entry = None;
    for rep in 0..reps {
        let (h, heap_digests) = perf4::macro_sweep(FelKind::Heap, report.threads);
        let (c, cal_digests) = perf4::macro_sweep(FelKind::Calendar, report.threads);
        assert_eq!(
            cal_digests, heap_digests,
            "FEL backends produced different simulation results — determinism bug"
        );
        println!(
            "  rep {}/{reps}: heap {:>8.0} ms, calendar {:>8.0} ms",
            rep + 1,
            h.wall_ms,
            c.wall_ms
        );
        if heap_entry
            .as_ref()
            .is_none_or(|b: &tlb_bench::MacroEntry| h.wall_ms < b.wall_ms)
        {
            heap_entry = Some(h);
        }
        if cal_entry
            .as_ref()
            .is_none_or(|b: &tlb_bench::MacroEntry| c.wall_ms < b.wall_ms)
        {
            cal_entry = Some(c);
        }
    }
    let (heap_entry, cal_entry) = (heap_entry.unwrap(), cal_entry.unwrap());
    for e in [&heap_entry, &cal_entry] {
        println!(
            "  {:<8} {:>3} jobs  {:>10} events  {:>8.0} ms  {:>10.0} events/s  depth p50={:.0} p99={:.0}",
            e.backend, e.jobs, e.events, e.wall_ms, e.events_per_sec, e.depth_p50, e.depth_p99
        );
    }
    report.macro_speedup = cal_entry.events_per_sec / heap_entry.events_per_sec.max(1.0);
    println!(
        "macro speedup (calendar/heap): {:.2}x",
        report.macro_speedup
    );
    report.macro_runs.push(heap_entry);
    report.macro_runs.push(cal_entry);

    if std::env::var("TLB_BENCH_ASSERT").as_deref() == Ok("1") {
        assert!(
            report.macro_speedup >= 1.0,
            "perf regression: calendar FEL slower than the heap it replaced \
             ({:.2}x) — see results/BENCH_PR4.json",
            report.macro_speedup
        );
        println!("TLB_BENCH_ASSERT: calendar >= heap holds");
    }

    report.save();
}
