//! Beyond the paper: the §8-related schemes (DRILL, CONGA-lite,
//! FlowBender) head-to-head with the paper's five, on the sustained basic
//! workload and under bandwidth asymmetry.

use rayon::prelude::*;
use tlb_bench::{asymmetric_scenario, sustained_scenario, Out, Scale};
use tlb_engine::SimTime;
use tlb_simnet::{RunReport, Scheme};

fn print_table(out: &mut Out, reports: &[RunReport]) {
    out.line(&format!(
        "{:<12} {:>10} {:>10} {:>8} {:>12} {:>9} {:>9}",
        "scheme", "AFCT(ms)", "p99(ms)", "miss(%)", "long(Mbps)", "reord(%)", "ns/dec*"
    ));
    for r in reports {
        out.line(&format!(
            "{:<12} {:>10.3} {:>10.3} {:>8.1} {:>12.1} {:>9.3} {:>9}",
            r.scheme,
            r.fct_short.afct * 1e3,
            r.fct_short.p99 * 1e3,
            r.fct_short.deadline_miss * 100.0,
            r.long_throughput() * 8.0 / 1e6,
            r.short.reorder_ratio() * 100.0,
            "-",
        ));
    }
    out.blank();
}

fn main() {
    let scale = Scale::from_env();
    let rounds = scale.pick(12, 30);
    let seed = tlb_bench::scale::base_seed();
    let mut out = Out::new("extensions");
    out.line("Extensions — DRILL / CONGA-lite / FlowBender vs the paper set");
    out.blank();

    out.line("A. sustained basic workload (100 short + 3 long, 15 paths)");
    let schemes = Scheme::extended_set();
    let reports: Vec<RunReport> = schemes
        .par_iter()
        .map(|s| sustained_scenario(s.clone(), 100, 3, rounds, seed))
        .collect();
    print_table(&mut out, &reports);

    out.line("B. bandwidth asymmetry (2 of 15 uplinks at 25%)");
    let reports: Vec<RunReport> = schemes
        .par_iter()
        .map(|s| asymmetric_scenario(s.clone(), 0.25, SimTime::ZERO, seed))
        .collect();
    print_table(&mut out, &reports);

    out.line("(*) decision cost: see `cargo bench -p tlb-bench --bench lb_decision`.");
    out.line("reading guide: DRILL ~ RPS with queue awareness (strong when");
    out.line("symmetric); CONGA-lite ~ LetFlow with queue awareness;");
    out.line("FlowBender ~ ECMP that escapes congestion. TLB remains the only");
    out.line("scheme with class-dependent granularity.");
    out.save();
}
