//! Fig. 9 — basic performance of **long flows**: (a) reordering ratio over
//! time, (b) instantaneous aggregate throughput.

use tlb_bench::{sample_series, sustained_scenario, Out, Scale};
use tlb_simnet::Scheme;

fn main() {
    let _ = Scale::from_env();
    let mut out = Out::new("fig09");
    let seed = tlb_bench::scale::base_seed();
    let rounds = 15;
    out.line("Fig. 9 — long flows: reordering and instantaneous throughput");
    out.line("  workload: 100 short + 3 long flows, 15 paths, DCTCP");
    out.blank();

    let reports: Vec<_> = Scheme::paper_set()
        .into_iter()
        .map(|s| sustained_scenario(s, 100, 3, rounds, seed))
        .collect();

    out.line("(a) long-flow out-of-order ratio");
    for r in &reports {
        out.line(&format!(
            "{:<10} mean={:.4}  dupACK/seg={:.4}",
            r.scheme,
            r.long.reorder_ratio(),
            r.long.dupack_ratio()
        ));
    }
    out.blank();

    out.line("(b) instantaneous aggregate long-flow goodput (Mbit/s, sampled)");
    for r in &reports {
        let pts = sample_series(&r.long_goodput_series, 8);
        let series: Vec<String> = pts
            .iter()
            .map(|(t, v)| format!("{:.0}ms:{:.0}", t * 1e3, v * 8.0 / 1e6))
            .collect();
        out.line(&format!(
            "{:<10} avg-goodput/flow={:.1}Mbps  [{}]",
            r.scheme,
            r.long_throughput() * 8.0 / 1e6,
            series.join(" ")
        ));
    }
    out.blank();
    out.line("aggregate long-flow goodput over time (Mbit/s):");
    let charted: Vec<(&str, Vec<(f64, f64)>)> = reports
        .iter()
        .map(|r| {
            let pts: Vec<(f64, f64)> = r
                .long_goodput_series
                .iter()
                .map(|&(t, v)| (t * 1e3, v * 8.0 / 1e6))
                .collect();
            (r.scheme.as_str(), pts)
        })
        .collect();
    let series_refs: Vec<(&str, &[(f64, f64)])> =
        charted.iter().map(|(n, v)| (*n, v.as_slice())).collect();
    for line in tlb_metrics::chart(&series_refs, 72, 16).lines() {
        out.line(line);
    }
    out.blank();
    out.line("expected shape (paper): TLB sustains the highest long-flow");
    out.line("throughput with near-zero reordering; ECMP lowest utilization,");
    out.line("RPS highest reordering.");
    out.save();
}
