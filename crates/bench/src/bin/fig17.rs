//! Fig. 17 — asymmetric scenario, varying the **bandwidth** of 2 degraded
//! leaf-to-spine links: normalized AFCT and long-flow throughput.

use rayon::prelude::*;
use tlb_bench::{asymmetric_scenario, normalized_panels, Out, Scale};
use tlb_engine::SimTime;
use tlb_simnet::Scheme;

fn main() {
    let scale = Scale::from_env();
    let mut out = Out::new("fig17");
    out.line("Fig. 17 — asymmetry: 2 of 15 uplinks at reduced bandwidth");
    out.blank();

    // Bandwidth factors of the degraded links (1.0 = symmetric).
    let factors = scale.pick(vec![1.0f64, 0.5, 0.25], vec![1.0, 0.75, 0.5, 0.25, 0.1]);
    let schemes = Scheme::paper_set();
    let names: Vec<&str> = schemes.iter().map(|s| s.name()).collect();
    let seed = tlb_bench::scale::base_seed();

    let mut afct = Vec::new();
    let mut gput = Vec::new();
    for &f in &factors {
        let reports: Vec<_> = schemes
            .par_iter()
            .map(|s| asymmetric_scenario(s.clone(), f, SimTime::ZERO, seed))
            .collect();
        afct.push(reports.iter().map(|r| r.fct_short.afct).collect::<Vec<_>>());
        gput.push(
            reports
                .iter()
                .map(|r| r.long_throughput())
                .collect::<Vec<_>>(),
        );
    }
    let labels: Vec<String> = factors
        .iter()
        .map(|f| format!("{:.0}%bw", f * 100.0))
        .collect();
    normalized_panels(&mut out, "degraded bw", &labels, &names, &afct, &gput);
    out.line("expected shape (paper): the bigger the bandwidth gap, the worse");
    out.line("the oblivious schemes (ECMP/RPS/Presto) get relative to TLB;");
    out.line("LetFlow stays competitive.");
    out.save();
}
