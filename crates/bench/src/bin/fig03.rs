//! Fig. 3 — the impact of switching granularity on **short flows**:
//! (a) CDF of the queue length experienced by short-flow packets,
//! (b) ratio of TCP duplicate ACKs, (c) CDF of flow completion time, under
//! flow-level (ECMP), flowlet-level (LetFlow) and packet-level (RPS)
//! forwarding of the paper's §2.2 mixed workload.

use tlb_bench::{granularity_schemes, sustained_scenario, Out, Scale};
use tlb_metrics::FlowClass;

fn main() {
    let scale = Scale::from_env();
    let mut out = Out::new("fig03");
    let n_short = 100;
    let n_long = 5; // §2.2: 100 short + 5 long flows
    let rounds = scale.pick(15, 40); // sustained m_S: clients loop their requests
    let seeds: Vec<u64> = (0..scale.pick(1, 3))
        .map(|i| tlb_bench::scale::base_seed() + i)
        .collect();

    out.line("Fig. 3 — impact of switching granularity on short flows");
    out.line(&format!(
        "  workload: {n_short} short (<100KB) + {n_long} long (>10MB), 15 paths, DCTCP"
    ));
    out.blank();

    let reports: Vec<_> = granularity_schemes()
        .into_iter()
        .map(|(label, scheme)| {
            let rs: Vec<_> = seeds
                .iter()
                .map(|&s| sustained_scenario(scheme.clone(), n_short, n_long, rounds, s))
                .collect();
            (label, rs)
        })
        .collect();

    // (a) queue length CDF experienced by short-flow packets.
    out.line("(a) queue length experienced by short-flow packets (packets)");
    out.line(&format!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "granular.", "p25", "p50", "p75", "p95", "p99"
    ));
    for (label, rs) in &reports {
        let mut merged = tlb_metrics::SampleSet::new();
        for r in rs {
            merged.merge(&r.short_qlen);
        }
        let q = merged.quantiles(&[0.25, 0.50, 0.75, 0.95, 0.99]);
        out.line(&format!(
            "{:<10} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
            label, q[0], q[1], q[2], q[3], q[4],
        ));
    }
    out.blank();

    // (b) duplicate-ACK ratio.
    out.line("(b) TCP duplicate-ACK ratio of short flows (dupACKs per data segment)");
    for (label, rs) in &reports {
        let ratio: f64 = rs.iter().map(|r| r.short.dupack_ratio()).sum::<f64>() / rs.len() as f64;
        out.line(&format!("{:<10} {:>8.4}", label, ratio));
    }
    out.blank();

    // (c) FCT CDF of short flows.
    out.line("(c) CDF of short-flow completion time (ms)");
    out.line(&format!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "granular.", "p25", "p50", "p75", "p95", "p99"
    ));
    for (label, rs) in &reports {
        // Merge the raw FCT samples across seeds and sort once at the end
        // — no per-seed CDF build (a sort per run) or 64-point resampling.
        let mut merged = tlb_metrics::SampleSet::new();
        for r in rs {
            for fct in r.fct.fct_samples(FlowClass::Short) {
                merged.push(fct);
            }
        }
        let cdf = merged.into_cdf();
        out.line(&format!(
            "{:<10} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            label,
            cdf.quantile(0.25) * 1e3,
            cdf.quantile(0.50) * 1e3,
            cdf.quantile(0.75) * 1e3,
            cdf.quantile(0.95) * 1e3,
            cdf.quantile(0.99) * 1e3,
        ));
    }
    out.blank();
    out.line("expected shape (paper): queue length and tail FCT grow with");
    out.line("granularity (flow worst); dup-ACKs highest at packet level.");
    out.save();
}
