//! Fig. 16 — asymmetric scenario, varying the **extra propagation delay**
//! of 2 degraded leaf-to-spine links: normalized AFCT and long-flow
//! throughput.

use rayon::prelude::*;
use tlb_bench::{asymmetric_scenario, normalized_panels, Out, Scale};
use tlb_engine::SimTime;
use tlb_simnet::Scheme;

fn main() {
    let scale = Scale::from_env();
    let mut out = Out::new("fig16");
    out.line("Fig. 16 — asymmetry: extra delay on 2 of 15 uplinks");
    out.blank();

    let delays_us = scale.pick(vec![0u64, 100, 200, 400], vec![0, 50, 100, 200, 400, 800]);
    let schemes = Scheme::paper_set();
    let names: Vec<&str> = schemes.iter().map(|s| s.name()).collect();
    let seed = tlb_bench::scale::base_seed();

    let mut afct = Vec::new();
    let mut gput = Vec::new();
    for &d in &delays_us {
        let reports: Vec<_> = schemes
            .par_iter()
            .map(|s| asymmetric_scenario(s.clone(), 1.0, SimTime::from_micros(d), seed))
            .collect();
        afct.push(reports.iter().map(|r| r.fct_short.afct).collect::<Vec<_>>());
        gput.push(
            reports
                .iter()
                .map(|r| r.long_throughput())
                .collect::<Vec<_>>(),
        );
    }
    let labels: Vec<String> = delays_us.iter().map(|d| format!("{d}us")).collect();
    normalized_panels(&mut out, "extra delay", &labels, &names, &afct, &gput);
    out.line("expected shape (paper): ECMP's tail blows up once hashed onto");
    out.line("bad paths; RPS/Presto degrade with reordering; LetFlow and TLB");
    out.line("stay resilient.");
    out.save();
}
