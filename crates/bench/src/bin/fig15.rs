//! Fig. 15 — leaf-switch overhead per scheme. The paper measures BMv2 CPU
//! and memory utilization; the simulator-level analogues (substitution
//! documented in DESIGN.md) are:
//!
//! (a) **CPU** — nanoseconds per forwarding decision, measured by driving
//!     each balancer with a realistic packet stream against a loaded
//!     15-port view (the criterion bench `lb_decision` cross-checks this);
//! (b) **memory** — peak bytes of balancer state during the basic mixed
//!     workload (flow/flowlet tables, counters).

use tlb_bench::{basic_scenario, Out, Scale};
use tlb_engine::{SimRng, SimTime};
use tlb_net::{FlowId, HostId, LinkProps, Packet, PktKind};
use tlb_simnet::Scheme;
use tlb_switch::{OutPort, PortView, QueueCfg};

/// Build a 15-uplink view with mixed queue lengths.
fn make_ports() -> Vec<OutPort> {
    let link = LinkProps::gbps(1.0, SimTime::ZERO);
    let cfg = QueueCfg {
        capacity_pkts: 256,
        ecn_threshold_pkts: Some(20),
    };
    (0..15)
        .map(|i| {
            let mut p = OutPort::new(link, cfg);
            for s in 0..(i * 3 % 17) {
                p.enqueue(
                    Packet::data(
                        FlowId(9999),
                        HostId(0),
                        HostId(1),
                        s as u32,
                        1460,
                        40,
                        SimTime::ZERO,
                    ),
                    SimTime::ZERO,
                );
            }
            p
        })
        .collect()
}

/// A packet stream resembling the basic workload: 100 flows, mostly data,
/// occasional SYN/FIN.
fn make_stream(n: usize, rng: &mut SimRng) -> Vec<Packet> {
    (0..n)
        .map(|i| {
            let flow = FlowId(rng.gen_range(100) as u32);
            match i % 97 {
                0 => Packet::control(flow, HostId(0), HostId(20), PktKind::Syn, 0, SimTime::ZERO),
                1 => Packet::control(flow, HostId(0), HostId(20), PktKind::Fin, 0, SimTime::ZERO),
                _ => Packet::data(
                    flow,
                    HostId(0),
                    HostId(20),
                    i as u32,
                    1460,
                    40,
                    SimTime::ZERO,
                ),
            }
        })
        .collect()
}

fn measure_decision_ns(scheme: &Scheme) -> f64 {
    let ports = make_ports();
    let mut rng = SimRng::new(7);
    let stream = make_stream(200_000, &mut rng);
    let mut lb = scheme.build(1);
    let mut now = SimTime::ZERO;
    // Warm up the flow tables.
    for pkt in &stream[..10_000] {
        now += SimTime::from_nanos(500);
        std::hint::black_box(lb.choose_uplink(pkt, PortView::new(&ports), now, &mut rng));
    }
    let t0 = std::time::Instant::now();
    for pkt in &stream[10_000..] {
        now += SimTime::from_nanos(500);
        std::hint::black_box(lb.choose_uplink(pkt, PortView::new(&ports), now, &mut rng));
    }
    t0.elapsed().as_nanos() as f64 / (stream.len() - 10_000) as f64
}

fn main() {
    let _ = Scale::from_env();
    let mut out = Out::new("fig15");
    out.line("Fig. 15 — leaf-switch overhead (simulator analogue)");
    out.blank();

    let schemes = Scheme::paper_set();

    out.line("(a) CPU: per-packet forwarding-decision cost (ns)");
    for s in &schemes {
        out.line(&format!(
            "{:<10} {:>8.1} ns/decision",
            s.name(),
            measure_decision_ns(s)
        ));
    }
    out.blank();

    out.line("(b) memory: peak balancer state during the basic workload (bytes)");
    let seed = tlb_bench::scale::base_seed();
    for s in &schemes {
        let r = basic_scenario(s.clone(), 100, 3, seed);
        out.line(&format!(
            "{:<10} {:>8} bytes",
            r.scheme, r.lb_state_bytes_peak
        ));
    }
    out.blank();
    out.line("expected shape (paper): ECMP/RPS/Presto near-zero overhead;");
    out.line("TLB adds a small flow table and periodic computation — visible");
    out.line("but not excessive.");
    out.save();
}
