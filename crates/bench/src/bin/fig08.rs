//! Fig. 8 — basic performance of **short flows** under ECMP/RPS/Presto/
//! LetFlow/TLB: (a) instantaneous reordering ratio, (b) average queueing
//! delay over time.

use tlb_bench::{sample_series, sustained_scenario, Out, Scale};
use tlb_simnet::Scheme;

fn main() {
    let _ = Scale::from_env();
    let mut out = Out::new("fig08");
    let seed = tlb_bench::scale::base_seed();
    let rounds = 15;
    out.line("Fig. 8 — short flows: reordering and queueing delay over time");
    out.line("  workload: 100 short + 3 long flows, 15 paths, DCTCP");
    out.blank();

    let reports: Vec<_> = Scheme::paper_set()
        .into_iter()
        .map(|s| sustained_scenario(s, 100, 3, rounds, seed))
        .collect();

    out.line("(a) short-flow reordering ratio over time (sampled)");
    for r in &reports {
        let pts = sample_series(&r.short_reorder_series, 8);
        let series: Vec<String> = pts
            .iter()
            .map(|(t, v)| format!("{:.0}ms:{:.3}", t * 1e3, v))
            .collect();
        out.line(&format!(
            "{:<10} mean={:.4}  [{}]",
            r.scheme,
            r.short.reorder_ratio(),
            series.join(" ")
        ));
    }
    out.blank();

    out.line("(b) short-flow per-hop queueing delay (us)");
    out.line(&format!(
        "{:<10} {:>8} {:>8} {:>8}",
        "scheme", "mean", "p95", "p99"
    ));
    for r in &reports {
        let q = r.short_qdelay.quantiles(&[0.95, 0.99]);
        out.line(&format!(
            "{:<10} {:>8.1} {:>8.1} {:>8.1}",
            r.scheme,
            r.short_qdelay.mean() * 1e6,
            q[0] * 1e6,
            q[1] * 1e6,
        ));
    }
    out.blank();
    out.line("expected shape (paper): TLB lowest queueing delay throughout;");
    out.line("RPS/Presto reorder most, TLB near-none.");
    out.save();
}
