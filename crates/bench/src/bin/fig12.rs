//! Fig. 12 — deadline-agnostic TLB: protect the 5th/25th/50th/75th
//! percentile of the deadline distribution and sweep the load on the
//! web-search workload; the same four panels as Fig. 10.

use tlb_bench::{large_scale_jobs, load_sweep, Out, Scale};
use tlb_core::TlbConfig;
use tlb_simnet::{run_all, RunReport, Scheme};

fn main() {
    let scale = Scale::from_env();
    let mut out = Out::new("fig12");
    out.line("Fig. 12 — deadline-agnostic TLB (percentile variants)");
    out.line("  true deadlines U[5ms, 25ms]; TLB protects a fixed percentile");
    out.blank();

    let variants: Vec<(String, Scheme)> = [
        (0.05, "TLB-5th"),
        (0.25, "TLB-25th"),
        (0.50, "TLB-50th"),
        (0.75, "TLB-75th"),
    ]
    .into_iter()
    .map(|(pct, name)| {
        let mut cfg = TlbConfig::paper_default();
        cfg.deadline_percentile = pct;
        (name.to_string(), Scheme::Tlb(cfg))
    })
    .collect();

    let schemes: Vec<Scheme> = variants.iter().map(|(_, s)| s.clone()).collect();
    let names: Vec<&str> = variants.iter().map(|(n, _)| n.as_str()).collect();
    let dist = tlb_workload::web_search();
    let loads = load_sweep(scale);
    let mut jobs = Vec::new();
    for &load in &loads {
        jobs.extend(large_scale_jobs(&schemes, &dist, load, scale));
    }
    let reports = run_all(jobs);
    let cell = |li: usize, si: usize| &reports[li * schemes.len() + si];

    let header = {
        let mut h = format!("{:<6}", "load");
        for n in &names {
            h.push_str(&format!(" {n:>10}"));
        }
        h
    };
    type Panel = (&'static str, Box<dyn Fn(&RunReport) -> f64>);
    let panels: Vec<Panel> = vec![
        (
            "(a) AFCT of short flows (ms)",
            Box::new(|r: &RunReport| r.fct_short.afct * 1e3),
        ),
        (
            "(b) 99th-pct FCT of short flows (ms)",
            Box::new(|r: &RunReport| r.fct_short.p99 * 1e3),
        ),
        (
            "(c) missed deadlines (%)",
            Box::new(|r: &RunReport| r.fct_short.deadline_miss * 100.0),
        ),
        (
            "(d) long-flow throughput (Mbit/s)",
            Box::new(|r: &RunReport| r.long_throughput() * 8.0 / 1e6),
        ),
    ];
    for (panel, f) in &panels {
        out.line(panel);
        out.line(&header);
        for (li, load) in loads.iter().enumerate() {
            let mut row = format!("{load:<6.1}");
            for si in 0..schemes.len() {
                row.push_str(&format!(" {:>10.2}", f(cell(li, si))));
            }
            out.line(&row);
        }
        out.blank();
    }
    // The load sweep alone can be flat when per-leaf m_S stays small (the
    // Eq. 9 threshold then never binds and every percentile behaves the
    // same). The paper's trade-off appears under heavy sustained short
    // load, so reproduce it explicitly at the §6.1 scale.
    out.line("stress appendix: decaying burst at the basic scale, deep drop-tail");
    out.line("queues - the regime where the percentile choice binds");
    out.line(&format!(
        "{:<10} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "m_S", "variant", "AFCT(ms)", "p99(ms)", "miss(%)", "long(Mbps)"
    ));
    use rayon::prelude::*;
    for &n_short in &[300usize, 500] {
        let runs: Vec<_> = variants
            .par_iter()
            .map(|(name, scheme)| {
                let mut cfg = tlb_simnet::SimConfig::basic_paper(scheme.clone());
                // Deep drop-tail queues (the §4.2 substrate): long flows
                // keep window-limited standing queues, so the percentile's
                // q_th actually governs when they may move.
                cfg.queue.capacity_pkts = 512;
                cfg.queue.ecn_threshold_pkts = None;
                cfg.host_queue.ecn_threshold_pkts = None;
                let mut mix = tlb_workload::BasicMixConfig::paper_default();
                mix.n_short = n_short;
                mix.n_long = 6;
                mix.short_window = tlb_engine::SimTime::from_millis(15);
                // A decaying burst: m_S starts huge and drains, crossing
                // the different percentile thresholds at different times —
                // that is when the variants diverge.
                let flows = tlb_workload::basic_mix(
                    &cfg.topo,
                    &mix,
                    &mut tlb_engine::SimRng::new(tlb_bench::scale::base_seed()),
                );
                (name.clone(), tlb_simnet::Simulation::new(cfg, flows).run())
            })
            .collect();
        for (name, r) in runs {
            out.line(&format!(
                "{:<10} {:>10} {:>10.2} {:>10.2} {:>10.1} {:>12.1}",
                n_short,
                name,
                r.fct_short.afct * 1e3,
                r.fct_short.p99 * 1e3,
                r.fct_short.deadline_miss * 100.0,
                r.long_throughput() * 8.0 / 1e6,
            ));
        }
        out.blank();
    }
    out.line("expected shape (paper): tight percentiles (5th/25th) give the");
    out.line("lowest FCT and misses; lax ones (50th/75th) recover long-flow");
    out.line("throughput; the 25th percentile is the best trade-off.");
    out.save();
}
