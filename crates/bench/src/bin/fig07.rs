//! Fig. 7 — model verification: the Eq. 9 numeric `q_th` against the
//! simulated minimum switching threshold, varying (a) the number of short
//! flows, (b) the number of long flows, (c) the number of paths, and
//! (d) the deadline.
//!
//! Simulation side: the paper reports the minimum fixed threshold with no
//! deadline misses. In our substrate the long flows are congestion
//! controlled end to end (the model's Eq. 1 instead assumes open-loop
//! senders at W_L/RTT ≈ 5 Gbit/s each, ~5x their access-link rate), which
//! makes *any* threshold deadline-safe until the fabric saturates — so we
//! verify the model's operating point instead: running with
//! `q_th = model(m_S, m_L, n, D)` must (i) miss no deadlines and (ii) keep
//! the short AFCT within the budget D, across all four axes. The run uses
//! drop-tail queues with the §4.2 buffer of 512 packets, preserving the
//! model's deep-queue premise.

use rayon::prelude::*;
use tlb_bench::{Out, Scale};
use tlb_core::{ThresholdMode, TlbConfig};
use tlb_engine::{SimRng, SimTime};
use tlb_model::{q_th_min, ModelParams, QTh};
use tlb_net::LeafSpineBuilder;
use tlb_simnet::{Scheme, SimConfig, Simulation};
use tlb_workload::{sustained_mix, BasicMixConfig};

/// One verification point.
#[derive(Clone, Copy)]
struct Point {
    n_short: usize,
    n_long: usize,
    n_paths: usize,
    deadline: SimTime,
}

impl Point {
    fn paper_default() -> Point {
        Point {
            n_short: 100,
            n_long: 3,
            n_paths: 15,
            deadline: SimTime::from_millis(10),
        }
    }

    fn model_params(&self) -> ModelParams {
        ModelParams {
            n_paths: self.n_paths as f64,
            m_short: self.n_short as f64,
            m_long: self.n_long as f64,
            deadline: self.deadline.as_secs_f64(),
            ..ModelParams::paper_defaults()
        }
    }
}

/// Run the §4.2 scenario with a fixed threshold; returns (miss fraction,
/// short AFCT seconds).
fn run_at(p: Point, q_th_bytes: u64, seed: u64) -> (f64, f64) {
    let mut tlb = TlbConfig::paper_default();
    tlb.threshold_mode = ThresholdMode::Fixed(q_th_bytes);
    let mut cfg = SimConfig::basic_paper(Scheme::Tlb(tlb));
    cfg.topo = LeafSpineBuilder::new(3, p.n_paths, 16)
        .link_gbps(1.0)
        .target_rtt(SimTime::from_micros(100))
        .build()
        .into();
    cfg.queue.capacity_pkts = 512; // §4.2 buffer
    cfg.queue.ecn_threshold_pkts = None;
    cfg.host_queue.ecn_threshold_pkts = None;
    cfg.seed = seed;

    // Sustained closed-loop shorts: m_S stays at p.n_short throughout,
    // matching the model's "m_S active short flows" premise. Every short
    // flow carries the same deadline D.
    let mut mix = BasicMixConfig::paper_default();
    mix.n_short = p.n_short;
    mix.n_long = p.n_long;
    mix.deadline_lo = p.deadline;
    mix.deadline_hi = p.deadline;
    let rounds = 8;
    let (flows, next) = sustained_mix(&cfg.topo, &mix, rounds, &mut SimRng::new(seed));
    let r = Simulation::new_chained(cfg, flows, next).run();
    (r.fct_short.deadline_miss, r.fct_short.afct)
}

fn model_qth_bytes(p: Point) -> u64 {
    match q_th_min(&p.model_params()) {
        QTh::Finite(b) => b as u64,
        QTh::Infinite => u64::MAX,
    }
}

fn run_panel(out: &mut Out, title: &str, xs: &[(String, Point)], seeds: &[u64]) {
    out.line(title);
    out.line(&format!(
        "{:<12} {:>13} {:>10} {:>12} {:>8}",
        "x", "model(pkts)", "miss(%)", "AFCT(ms)", "D(ms)"
    ));
    // All (point, seed) cells in parallel.
    let cells: Vec<(f64, f64)> = xs
        .par_iter()
        .map(|(_, p)| {
            let q = model_qth_bytes(*p);
            let runs: Vec<(f64, f64)> = seeds.iter().map(|&s| run_at(*p, q, s)).collect();
            let misses: Vec<f64> = runs.iter().map(|r| r.0).collect();
            let miss = tlb_metrics::max(&misses);
            let afct = runs.iter().map(|r| r.1).sum::<f64>() / runs.len() as f64;
            (miss, afct)
        })
        .collect();
    for ((label, p), (miss, afct)) in xs.iter().zip(cells) {
        let model = match q_th_min(&p.model_params()) {
            QTh::Finite(b) => format!("{:.1}", b / 1500.0),
            QTh::Infinite => "inf".into(),
        };
        out.line(&format!(
            "{:<12} {:>13} {:>10.1} {:>12.2} {:>8.0}",
            label,
            model,
            miss * 100.0,
            afct * 1e3,
            p.deadline.as_millis_f64()
        ));
    }
    out.blank();
}

fn main() {
    let scale = Scale::from_env();
    let seeds: Vec<u64> = (0..scale.pick(1, 2))
        .map(|i| tlb_bench::scale::base_seed() + i)
        .collect();
    let mut out = Out::new("fig07");
    out.line("Fig. 7 — Eq. 9 threshold trends + operating-point verification");
    out.line("  base point: 100 short + 3 long flows, 15 paths, D = 10 ms");
    out.blank();

    let base = Point::paper_default();

    let panel_a: Vec<_> = scale
        .pick(
            vec![40usize, 80, 120, 160],
            vec![40, 60, 80, 100, 120, 160, 200],
        )
        .into_iter()
        .map(|m| (format!("m_S={m}"), Point { n_short: m, ..base }))
        .collect();
    run_panel(
        &mut out,
        "(a) varying the number of short flows",
        &panel_a,
        &seeds,
    );

    let panel_b: Vec<_> = scale
        .pick(vec![1usize, 3, 5, 7], vec![1, 2, 3, 4, 5, 6, 7, 8])
        .into_iter()
        .map(|m| (format!("m_L={m}"), Point { n_long: m, ..base }))
        .collect();
    run_panel(
        &mut out,
        "(b) varying the number of long flows",
        &panel_b,
        &seeds,
    );

    let panel_c: Vec<_> = scale
        .pick(vec![9usize, 12, 15, 18], vec![9, 11, 13, 15, 17, 19, 21])
        .into_iter()
        .map(|n| (format!("n={n}"), Point { n_paths: n, ..base }))
        .collect();
    run_panel(
        &mut out,
        "(c) varying the number of paths",
        &panel_c,
        &seeds,
    );

    let panel_d: Vec<_> = scale
        .pick(vec![5u64, 10, 15, 25], vec![5, 8, 10, 13, 15, 20, 25])
        .into_iter()
        .map(|ms| {
            (
                format!("D={ms}ms"),
                Point {
                    deadline: SimTime::from_millis(ms),
                    ..base
                },
            )
        })
        .collect();
    run_panel(&mut out, "(d) varying the deadline", &panel_d, &seeds);

    out.line("expected shape: the model threshold q_th grows with m_S and");
    out.line("m_L and shrinks with n and D (the paper's Fig. 7 trends), and");
    out.line("running the switch AT the model threshold meets the deadline");
    out.line("budget (miss ~0, AFCT < D) except where aggregate load exceeds");
    out.line("capacity (largest m_S / tightest D).");
    out.save();
}
