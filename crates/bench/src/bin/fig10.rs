//! Fig. 10 — large-scale **web search** workload: (a) short-flow AFCT,
//! (b) 99th-percentile FCT, (c) deadline miss ratio, (d) long-flow
//! throughput, for ECMP/RPS/Presto/LetFlow/TLB across loads.

use tlb_bench::large_scale_figure;

fn main() {
    large_scale_figure(
        "fig10",
        "Fig. 10 — web search application (heavy-tailed, ~30% flows > 1MB)",
        &tlb_workload::web_search(),
    );
}
