//! `BENCH_PR2.json` emitter: time the §6.2 figure sweeps serial vs
//! parallel and record the harness's perf trajectory.
//!
//! ```sh
//! cargo run --release -p tlb-bench --bin bench_pr2             # quick
//! TLB_THREADS=8 cargo run --release -p tlb-bench --bin bench_pr2
//! ```
//!
//! Each sweep is the exact (scheme × load) batch the corresponding figure
//! binary hands to `run_all`, timed once pinned to one thread and once on
//! the pool, with the two runs cross-checked for bit-identical results.
//! Output: `results/BENCH_PR2.json` (schema `tlb-bench-pr2/v1`).

use tlb_bench::{large_scale_jobs, load_sweep, PerfReport, Scale};
use tlb_simnet::Scheme;
use tlb_workload::SizeDist;

fn sweep_jobs(
    dist: &impl SizeDist,
    scale: Scale,
) -> Vec<(tlb_simnet::SimConfig, Vec<tlb_workload::FlowSpec>)> {
    let schemes = Scheme::paper_set();
    let mut jobs = Vec::new();
    for &load in &load_sweep(scale) {
        jobs.extend(large_scale_jobs(&schemes, dist, load, scale));
    }
    jobs
}

fn main() {
    let scale = Scale::from_env();
    let mut report = PerfReport::new();
    println!(
        "bench_pr2: {} scale, {} pool thread(s), {} host core(s)",
        report.scale, report.threads, report.host_cores
    );

    let web = tlb_workload::web_search();
    let mining = tlb_workload::data_mining();
    for (name, dist) in [("fig10_web_search", &web), ("fig11_data_mining", &mining)] {
        report.time_sweep(name, || sweep_jobs(dist, scale));
        let e = report.entries.last().unwrap();
        println!(
            "  {:<20} {:>3} jobs  serial {:>8.0} ms  parallel {:>8.0} ms  speedup {:.2}x",
            e.sweep, e.jobs, e.serial_ms, e.parallel_ms, e.speedup
        );
    }

    println!(
        "overall: serial {:.0} ms, parallel {:.0} ms, speedup {:.2}x",
        report.total_serial_ms, report.total_parallel_ms, report.overall_speedup
    );
    if report.host_cores == 1 {
        println!("note: single-core host — speedup ≈ 1.0 is expected here");
    }
    report.save();
}
