//! Fig. 4 — the impact of switching granularity on **long flows**:
//! (a) per-path link utilization, (b) out-of-order ratio, (c) average
//! long-flow throughput, under flow/flowlet/packet granularity.

use tlb_bench::{granularity_schemes, sustained_scenario, Out, Scale};

fn main() {
    let scale = Scale::from_env();
    let mut out = Out::new("fig04");
    let n_short = 100;
    let n_long = 5;
    let rounds = scale.pick(15, 40);
    let seed = tlb_bench::scale::base_seed();
    let _ = scale;

    out.line("Fig. 4 — impact of switching granularity on long flows");
    out.line(&format!(
        "  workload: {n_short} short + {n_long} long, 15 paths, DCTCP"
    ));
    out.blank();

    let reports: Vec<_> = granularity_schemes()
        .into_iter()
        .map(|(label, scheme)| {
            (
                label,
                sustained_scenario(scheme, n_short, n_long, rounds, seed),
            )
        })
        .collect();

    out.line("(a) sender-rack uplink utilization");
    out.line(&format!(
        "{:<10} {:>8} {:>8} {:>8} {:>10}",
        "granular.", "min", "mean", "max", "stddev"
    ));
    for (label, r) in &reports {
        let ups = &r.uplink_utilization[0]; // leaf 0 hosts all senders
        let mean = tlb_metrics::mean(ups);
        let min = tlb_metrics::min(ups);
        let max = tlb_metrics::max(ups);
        let var = ups.iter().map(|u| (u - mean).powi(2)).sum::<f64>() / ups.len() as f64;
        out.line(&format!(
            "{:<10} {:>8.3} {:>8.3} {:>8.3} {:>10.4}",
            label,
            min,
            mean,
            max,
            var.sqrt()
        ));
    }
    out.blank();

    out.line("(b) out-of-order arrival ratio of long flows");
    for (label, r) in &reports {
        out.line(&format!(
            "{:<10} {:>8.4}  ({} ooo / {} received)",
            label,
            r.long.reorder_ratio(),
            r.long.out_of_order,
            r.long.data_received
        ));
    }
    out.blank();

    out.line("(c) average long-flow throughput (Mbit/s, goodput per flow)");
    for (label, r) in &reports {
        out.line(&format!(
            "{:<10} {:>8.1}   ({:.1}% of 1 Gbit/s line rate)",
            label,
            r.long_throughput() * 8.0 / 1e6,
            r.long_throughput() * 8.0 / 1e7,
        ));
    }
    out.blank();
    out.line("expected shape (paper): flow granularity leaves paths idle");
    out.line("(utilization spread high), packet granularity reorders most;");
    out.line("both cost long-flow throughput.");
    out.save();
}
