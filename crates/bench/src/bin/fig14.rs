//! Fig. 14 — testbed scenario, varying the **number of long flows**:
//! the same normalized panels as Fig. 13.

use tlb_bench::{testbed_normalized_panels, Out, Scale};

fn main() {
    let scale = Scale::from_env();
    let mut out = Out::new("fig14");
    out.line("Fig. 14 — testbed (20 Mbit/s, 10 paths): varying long-flow count");
    out.blank();

    let counts = scale.pick(vec![2usize, 4, 6], vec![2, 4, 6, 8, 10]);
    let n_short = 100;
    let seed = tlb_bench::scale::base_seed();
    testbed_normalized_panels(&mut out, &counts, |n| (n_short, n), seed);
    out.line("expected shape (paper): TLB's advantage grows with more long");
    out.line("flows; ECMP/LetFlow suffer long-tailed delay, RPS/Presto");
    out.line("reordering.");
    out.save();
}
