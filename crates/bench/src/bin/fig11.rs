//! Fig. 11 — large-scale **data mining** workload: the same four panels as
//! Fig. 10 on the VL2 distribution (huge mass of tiny flows, <5% > 35MB).

use tlb_bench::large_scale_figure;

fn main() {
    large_scale_figure(
        "fig11",
        "Fig. 11 — data mining application (VL2 distribution)",
        &tlb_workload::data_mining(),
    );
}
