//! `BENCH_PR6.json` emitter: the packet-arena + recycling hot path timed
//! against the PR 5 baseline, plus the counting-allocator steady-state
//! audit on the same production job.
//!
//! ```sh
//! cargo run --release -p tlb-bench --bin bench_pr6              # quick
//! TLB_BENCH_ASSERT=1 cargo run --release -p tlb-bench --bin bench_pr6
//! ```
//!
//! This binary installs [`tlb_engine::CountingAlloc`] as its global
//! allocator, so the zero-allocation rows in the report are measured on
//! the exact binary being timed (both legs pay the same four relaxed
//! atomics per warmup-phase allocation; the steady state, by construction,
//! pays none). Per-job digests are asserted bit-identical between the legs
//! on every repetition. Output: `results/BENCH_PR6.json`
//! (schema `tlb-bench-pr6/v1`).

use tlb_bench::perf5::{self, Leg};
use tlb_bench::perf6::{self, Pr6Report};
use tlb_engine::CountingAlloc;

#[global_allocator]
static COUNTING: CountingAlloc = CountingAlloc;

fn main() {
    let mut report = Pr6Report::new();
    println!(
        "bench_pr6: {} scale, {} pool thread(s), {} host core(s), baseline from {}",
        report.scale, report.threads, report.host_cores, report.baseline_source
    );

    // --- steady-state allocation audit (serial: process-wide counters) --
    assert!(
        tlb_engine::alloc_audit::probe_counting(),
        "bench_pr6 must install the counting allocator"
    );
    for leg in [Leg::Flat, Leg::Reference] {
        let e = perf6::steady_alloc(leg);
        println!(
            "  steady alloc [{:<9}]: {} allocs + {} reallocs ({} bytes) \
             across {} steady events (warmup {})",
            e.leg, e.allocs, e.reallocs, e.bytes, e.steady_events, e.warmup_events
        );
        report.steady_alloc.push(e);
    }

    // --- fig10 throughput, flat vs reference ----------------------------
    // Jobs are built once per leg and replayed by reference; repetitions
    // re-time the same batch with zero re-cloning.
    let fig10_flat = perf5::fig10_jobs(Leg::Flat);
    let fig10_ref = perf5::fig10_jobs(Leg::Reference);

    // Untimed warmup so neither timed leg pays first-touch costs alone.
    {
        let warm = &fig10_flat[..1.min(fig10_flat.len())];
        let _ = rayon::with_threads(report.threads, || tlb_simnet::run_all_ref(warm));
    }

    // Best of `reps` (TLB_BENCH_REPS, default 3), leg order flipped every
    // rep so machine drift cannot systematically tax one leg.
    let reps: usize = std::env::var("TLB_BENCH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&r| r >= 1)
        .unwrap_or(3);

    let mut best_ref: Option<tlb_bench::SweepEntry> = None;
    let mut best_flat: Option<tlb_bench::SweepEntry> = None;
    for rep in 0..reps {
        let threads = report.threads;
        let ((rf, df_ref), (ff, df_flat)) = if rep % 2 == 0 {
            let r = perf5::sweep(Leg::Reference, "fig10", &fig10_ref, threads);
            let f = perf5::sweep(Leg::Flat, "fig10", &fig10_flat, threads);
            (r, f)
        } else {
            let f = perf5::sweep(Leg::Flat, "fig10", &fig10_flat, threads);
            let r = perf5::sweep(Leg::Reference, "fig10", &fig10_ref, threads);
            (r, f)
        };
        assert_eq!(
            df_flat, df_ref,
            "fig10: hot-path legs produced different simulation results — determinism bug"
        );
        println!(
            "  rep {}/{reps}: fig10 reference {:>8.0} ms / flat {:>8.0} ms",
            rep + 1,
            rf.wall_ms,
            ff.wall_ms
        );
        if best_ref.as_ref().is_none_or(|b| rf.wall_ms < b.wall_ms) {
            best_ref = Some(rf);
        }
        if best_flat.as_ref().is_none_or(|b| ff.wall_ms < b.wall_ms) {
            best_flat = Some(ff);
        }
    }
    let (ref_fig10, flat_fig10) = (best_ref.unwrap(), best_flat.unwrap());

    for e in [&ref_fig10, &flat_fig10] {
        println!(
            "  {:<9} {:<6} {:>3} jobs  {:>10} events  {:>8.0} ms  {:>10.0} events/s",
            e.leg, e.workload, e.jobs, e.events, e.wall_ms, e.events_per_sec
        );
    }

    report.speedup_fig10 = flat_fig10.events_per_sec / ref_fig10.events_per_sec.max(1.0);
    report.speedup_vs_pr5 =
        flat_fig10.events_per_sec / report.baseline_pr5_flat_events_per_sec.max(1.0);
    println!(
        "speedup: flat/reference {:.2}x (PR 5 shipped {:.2}x); \
         vs PR 5 flat baseline {:.2}x ({:.0} vs {:.0} events/s)",
        report.speedup_fig10,
        report.baseline_pr5_speedup_fig10,
        report.speedup_vs_pr5,
        flat_fig10.events_per_sec,
        report.baseline_pr5_flat_events_per_sec
    );

    if std::env::var("TLB_BENCH_ASSERT").as_deref() == Ok("1") {
        // The zero-allocation steady state is exact and deterministic:
        // gate it hard, on both delivery paths.
        for e in &report.steady_alloc {
            assert!(e.counting, "[{}] counting allocator not live", e.leg);
            assert!(e.steady_events > 0, "[{}] empty steady window", e.leg);
            assert_eq!(
                e.acquisitions(),
                0,
                "[{}] steady state touched the allocator: {} allocs + {} reallocs \
                 ({} bytes) — see results/BENCH_PR6.json",
                e.leg,
                e.allocs,
                e.reallocs,
                e.bytes
            );
        }
        // Throughput floor. This is deliberately NOT bench_pr5's 0.9
        // parity gate: the arena turned per-packet `Arrive` events from a
        // `Box` round-trip per hop into a 4-byte slot id, which made the
        // *reference* leg the faster one on short-link fabrics (measured
        // ~0.89x flat/reference, where PR 5 shipped 0.97x against the
        // boxed reference). The pipes' structural win — the fabric-sized
        // FEL occupancy bound at high BDP — is gated in bench_pr5; here
        // the floor only catches the flat leg falling off a cliff.
        assert!(
            report.speedup_fig10 >= 0.8,
            "perf regression: flat hot path clearly slower than the per-packet \
             reference ({:.2}x) — see results/BENCH_PR6.json",
            report.speedup_fig10
        );
        println!("TLB_BENCH_ASSERT: zero-allocation steady state and fig10 parity hold");
    }

    report.runs = vec![ref_fig10, flat_fig10];
    report.save();
}
