//! Run every figure reproduction in sequence. Results land in `results/`.
//!
//! ```sh
//! cargo run --release -p tlb-bench --bin repro_all            # quick
//! TLB_SCALE=full cargo run --release -p tlb-bench --bin repro_all
//! ```
//!
//! Figures run one after another (their outputs interleave badly
//! otherwise), but each binary fans its own (scheme × load × seed) batch
//! out over the thread pool — `TLB_THREADS` (default: all cores) controls
//! the width, and `bench_pr2` at the end records the serial-vs-parallel
//! wall-clock trajectory to `results/BENCH_PR2.json`.

use std::process::Command;

fn main() {
    let figures = [
        "fig03",
        "fig04",
        "fig05",
        "fig07",
        "fig08",
        "fig09",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "ablation",
        "extensions",
        "bench_pr2",
        "bench_pr4",
        "bench_pr5",
        "bench_pr6",
        "bench_pr8",
        "bench_pr9",
    ];
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir");
    println!(
        "repro_all: {} pool thread(s) per figure ({} host core(s); set TLB_THREADS to override)",
        rayon::current_num_threads(),
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let t0 = std::time::Instant::now();
    let mut failed = Vec::new();
    for fig in figures {
        println!("\n================ {fig} ================");
        let status = Command::new(dir.join(fig))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {fig}: {e}"));
        if !status.success() {
            eprintln!("{fig} FAILED: {status}");
            failed.push(fig);
        }
    }
    println!(
        "\nrepro_all finished in {:.1}s ({} figures, {} failed)",
        t0.elapsed().as_secs_f64(),
        figures.len(),
        failed.len()
    );
    if !failed.is_empty() {
        eprintln!("failed figures: {failed:?}");
        std::process::exit(1);
    }
}
