//! Fig. 13 — testbed scenario, varying the **number of short flows**:
//! (a) short-flow AFCT and (b) long-flow throughput, normalized to TLB —
//! exactly how the paper reports it.

use tlb_bench::{testbed_normalized_panels, Out, Scale};

fn main() {
    let scale = Scale::from_env();
    let mut out = Out::new("fig13");
    out.line("Fig. 13 — testbed (20 Mbit/s, 10 paths): varying short-flow count");
    out.blank();

    let counts = scale.pick(vec![50usize, 100, 150], vec![50, 100, 150, 200, 250]);
    let n_long = 4;
    let seed = tlb_bench::scale::base_seed();
    testbed_normalized_panels(&mut out, &counts, |n| (n, n_long), seed);
    out.line("expected shape (paper): TLB cuts AFCT ~18-40% vs ECMP and");
    out.line("~10-15% vs LetFlow; long throughput +45-80% vs ECMP.");
    out.save();
}
