//! Ablation study of TLB's design choices (beyond the paper's figures):
//!
//! * threshold policy: adaptive (Eq. 9) vs fixed (0 = per-packet,
//!   mid-range, ∞ = pin after classification);
//! * granularity update interval `t` (the paper fixes 500 µs);
//! * online mean-short-size estimation (EWMA) vs the 70 KB prior;
//! * deadline percentile (cross-checks Fig. 12 at the basic scale).
//!
//! Each variant runs the sustained §6.1 workload.

use rayon::prelude::*;
use tlb_bench::{Out, Scale};
use tlb_core::{ThresholdMode, TlbConfig};
use tlb_engine::{SimRng, SimTime};
use tlb_simnet::{RunReport, Scheme, SimConfig, Simulation};
use tlb_workload::{sustained_mix, BasicMixConfig};

fn run_variant(cfg_tlb: TlbConfig, rounds: usize, seed: u64) -> RunReport {
    let cfg = SimConfig::basic_paper(Scheme::Tlb(cfg_tlb));
    let mut mix = BasicMixConfig::paper_default();
    mix.n_short = 100;
    mix.n_long = 3;
    let (flows, next) = sustained_mix(&cfg.topo, &mix, rounds, &mut SimRng::new(seed));
    Simulation::new_chained(cfg, flows, next).run()
}

fn main() {
    let scale = Scale::from_env();
    let rounds = scale.pick(12, 30);
    let seed = tlb_bench::scale::base_seed();
    let mut out = Out::new("ablation");
    out.line("TLB ablations — sustained basic workload (100 short + 3 long)");
    out.blank();

    let base = TlbConfig::paper_default();
    let mut variants: Vec<(String, TlbConfig)> = vec![("TLB (paper)".into(), base)];

    for (name, q) in [
        ("fixed q=0 (pkt)", 0u64),
        ("fixed q=15kB", 15_000),
        ("fixed q=45kB", 45_000),
        ("fixed q=inf (pin)", u64::MAX),
    ] {
        let mut c = base;
        c.threshold_mode = ThresholdMode::Fixed(q);
        variants.push((name.into(), c));
    }
    for us in [100u64, 2_000, 10_000] {
        let mut c = base;
        c.update_interval = SimTime::from_micros(us);
        c.idle_timeout = SimTime::from_micros(us);
        variants.push((format!("t={us}us"), c));
    }
    {
        let mut c = base;
        c.estimate_mean_short = true;
        variants.push(("EWMA X estimate".into(), c));
        let mut c = base;
        c.mean_short_prior = 10_000.0; // badly wrong prior, no estimation
        variants.push(("X prior 10kB (wrong)".into(), c));
    }
    for pct in [0.05, 0.75] {
        let mut c = base;
        c.deadline_percentile = pct;
        variants.push((format!("D at {:.0}th pct", pct * 100.0), c));
    }

    let reports: Vec<RunReport> = variants
        .par_iter()
        .map(|(_, c)| run_variant(*c, rounds, seed))
        .collect();

    out.line(&format!(
        "{:<22} {:>10} {:>10} {:>8} {:>12} {:>9}",
        "variant", "AFCT(ms)", "p99(ms)", "miss(%)", "long(Mbps)", "reord(%)"
    ));
    for ((name, _), r) in variants.iter().zip(&reports) {
        out.line(&format!(
            "{:<22} {:>10.3} {:>10.3} {:>8.1} {:>12.1} {:>9.3}",
            name,
            r.fct_short.afct * 1e3,
            r.fct_short.p99 * 1e3,
            r.fct_short.deadline_miss * 100.0,
            r.long_throughput() * 8.0 / 1e6,
            r.short.reorder_ratio() * 100.0,
        ));
    }
    out.blank();
    out.line("reading guide: 'fixed 0' trades reordering for throughput,");
    out.line("'pin' trades throughput for isolation; adaptive should sit at");
    out.line("or near the best corner of both. A wrong size prior or a lazy");
    out.line("update interval degrades gracefully, not catastrophically.");
    out.save();
}
