//! `BENCH_PR5.json` emitter: hot-path comparison — static LB dispatch +
//! per-link delivery pipes (`flat`) vs boxed-`dyn` dispatch + per-packet
//! `Arrive` events (`reference`, the PR 4 hot path).
//!
//! ```sh
//! cargo run --release -p tlb-bench --bin bench_pr5              # quick
//! TLB_BENCH_ASSERT=1 cargo run --release -p tlb-bench --bin bench_pr5
//! ```
//!
//! Two workloads: the fig10-style quick sweep (headline events/second) and
//! a high-BDP long-link fabric (peak FEL depth, where per-packet delivery
//! holds one event per in-flight packet). Per-job digests are asserted
//! bit-identical between the legs on every repetition. Output:
//! `results/BENCH_PR5.json` (schema `tlb-bench-pr5/v1`).

use tlb_bench::perf5::{self, Leg, Pr5Report, SweepEntry};

fn main() {
    let mut report = Pr5Report::new();
    println!(
        "bench_pr5: {} scale, {} pool thread(s), {} host core(s)",
        report.scale, report.threads, report.host_cores
    );

    // Jobs are built once per (leg × workload) and replayed by reference —
    // repetitions re-time the same batch with zero re-cloning.
    let fig10_flat = perf5::fig10_jobs(Leg::Flat);
    let fig10_ref = perf5::fig10_jobs(Leg::Reference);
    let bdp_flat = perf5::high_bdp_jobs(Leg::Flat);
    let bdp_ref = perf5::high_bdp_jobs(Leg::Reference);

    // Untimed warmup so neither timed leg pays first-touch costs (page
    // faults, lazy allocator arenas) alone.
    {
        let warm = &fig10_flat[..1.min(fig10_flat.len())];
        let _ = rayon::with_threads(report.threads, || tlb_simnet::run_all_ref(warm));
    }

    // Keep each leg's best of `reps` (TLB_BENCH_REPS, default 3): minimum
    // wall-clock of identical deterministic work is the least-noise
    // estimate. The leg order flips every rep — on a drifting machine
    // (thermal, noisy neighbors) a fixed order systematically taxes
    // whichever leg always runs later, and flipping cancels that bias in
    // the per-leg minima.
    let reps: usize = std::env::var("TLB_BENCH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&r| r >= 1)
        .unwrap_or(3);

    let mut best: [Option<SweepEntry>; 4] = [None, None, None, None];
    for rep in 0..reps {
        let threads = report.threads;
        let (rf, ff) = if rep % 2 == 0 {
            let r = perf5::sweep(Leg::Reference, "fig10", &fig10_ref, threads);
            let f = perf5::sweep(Leg::Flat, "fig10", &fig10_flat, threads);
            (r, f)
        } else {
            let f = perf5::sweep(Leg::Flat, "fig10", &fig10_flat, threads);
            let r = perf5::sweep(Leg::Reference, "fig10", &fig10_ref, threads);
            (r, f)
        };
        let ((rf, df_ref), (ff, df_flat)) = (rf, ff);
        assert_eq!(
            df_flat, df_ref,
            "fig10: hot-path legs produced different simulation results — determinism bug"
        );
        let (rb, fb) = if rep % 2 == 0 {
            let r = perf5::sweep(Leg::Reference, "high-bdp", &bdp_ref, threads);
            let f = perf5::sweep(Leg::Flat, "high-bdp", &bdp_flat, threads);
            (r, f)
        } else {
            let f = perf5::sweep(Leg::Flat, "high-bdp", &bdp_flat, threads);
            let r = perf5::sweep(Leg::Reference, "high-bdp", &bdp_ref, threads);
            (r, f)
        };
        let ((rb, db_ref), (fb, db_flat)) = (rb, fb);
        assert_eq!(
            db_flat, db_ref,
            "high-bdp: hot-path legs produced different simulation results — determinism bug"
        );
        println!(
            "  rep {}/{reps}: fig10 ref {:>8.0} ms / flat {:>8.0} ms, \
             high-bdp ref {:>8.0} ms / flat {:>8.0} ms",
            rep + 1,
            rf.wall_ms,
            ff.wall_ms,
            rb.wall_ms,
            fb.wall_ms
        );
        for (slot, e) in best.iter_mut().zip([rf, ff, rb, fb]) {
            if slot.as_ref().is_none_or(|b| e.wall_ms < b.wall_ms) {
                *slot = Some(e);
            }
        }
    }
    let [ref_fig10, flat_fig10, ref_bdp, flat_bdp] = best.map(|e| e.unwrap());

    for e in [&ref_fig10, &flat_fig10, &ref_bdp, &flat_bdp] {
        println!(
            "  {:<9} {:<8} {:>3} jobs  {:>10} events  {:>8.0} ms  {:>10.0} events/s  \
             depth p50={:.0} p99={:.0} max={:.0} (bound {})",
            e.leg,
            e.workload,
            e.jobs,
            e.events,
            e.wall_ms,
            e.events_per_sec,
            e.depth_p50,
            e.depth_p99,
            e.depth_max,
            e.bound_max
        );
    }

    report.speedup_fig10 = flat_fig10.events_per_sec / ref_fig10.events_per_sec.max(1.0);
    report.speedup_high_bdp = flat_bdp.events_per_sec / ref_bdp.events_per_sec.max(1.0);
    report.fel_depth_reduction_high_bdp = ref_bdp.depth_max / flat_bdp.depth_max.max(1.0);
    println!(
        "speedup (flat/reference): fig10 {:.2}x, high-bdp {:.2}x; \
         high-bdp peak FEL depth reduced {:.1}x",
        report.speedup_fig10, report.speedup_high_bdp, report.fel_depth_reduction_high_bdp
    );

    assert!(
        flat_bdp.depth_max <= flat_bdp.bound_max as f64,
        "pipelined FEL depth {} exceeds its occupancy bound {}",
        flat_bdp.depth_max,
        flat_bdp.bound_max
    );

    if std::env::var("TLB_BENCH_ASSERT").as_deref() == Ok("1") {
        // Parity gate, not a speedup gate: on short-link fabrics the pipes
        // rarely hold more than one packet, so pipelined delivery replaces a
        // per-hop `Box` round-trip (cheap under a caching allocator) with a
        // ring-buffer copy — measured throughput is parity, and the 0.9
        // floor is one measured wall-clock noise band below it (best-of-rep
        // minima on shared single-core runners still jitter ~10%; see
        // EXPERIMENTS.md). The high-BDP FEL-depth reduction is the
        // structural win and is gated strictly.
        assert!(
            report.speedup_fig10 >= 0.9,
            "perf regression: flat hot path clearly slower than the dyn + \
             per-packet reference it replaced ({:.2}x) — see results/BENCH_PR5.json",
            report.speedup_fig10
        );
        assert!(
            report.fel_depth_reduction_high_bdp >= 2.0,
            "high-BDP peak FEL depth not meaningfully reduced ({:.1}x) — \
             see results/BENCH_PR5.json",
            report.fel_depth_reduction_high_bdp
        );
        println!("TLB_BENCH_ASSERT: fig10 parity and high-BDP FEL-depth reduction hold");
    }

    report.runs = vec![ref_fig10, flat_fig10, ref_bdp, flat_bdp];
    report.save();
}
