//! `BENCH_PR8.json` emitter: the hybrid fluid/packet fidelity tier,
//! measured (see `tlb_bench::perf8` for the leg definitions).
//!
//! ```sh
//! cargo run --release -p tlb-bench --bin bench_pr8              # quick
//! TLB_SCALE=full TLB_BENCH_ASSERT=1 \
//!     cargo run --release -p tlb-bench --bin bench_pr8
//! ```
//!
//! Three legs: the packet-vs-hybrid sustained-mix comparison (the ≥ 10×
//! long-work reduction gate), the same comparison on the k=16 fat tree,
//! and the ≥ 1M-flow hybrid endurance run (Full scale) with its memory
//! evidence (`VmHWM` + FEL occupancy bound peak). All legs run serial —
//! the comparison is fidelity-vs-fidelity on one core, not a scaling
//! study. Output: `results/BENCH_PR8.json` (schema `tlb-bench-pr8/v1`).

use tlb_bench::perf8::{self, FidelityEntry, Pr8Report};
use tlb_bench::Scale;
use tlb_simnet::FidelityKind;

fn print_entry(e: &FidelityEntry) {
    println!(
        "  {:<9} {:<7} {:>2} jobs  {:>7} flows  {:>10} events  {:>8.0} ms  \
         {:>9} long-work  {:>5} migrations",
        e.workload,
        e.fidelity,
        e.jobs,
        e.flows,
        e.events,
        e.wall_ms,
        e.long_work,
        e.fluid_migrations
    );
}

fn reduction(packet: &FidelityEntry, hybrid: &FidelityEntry) -> f64 {
    packet.long_work as f64 / (hybrid.long_work.max(1)) as f64
}

fn main() {
    let mut report = Pr8Report::new();
    println!(
        "bench_pr8: {} scale, seed {}, {} host core(s)",
        report.scale, report.seed, report.host_cores
    );

    let (rounds, seeds, k16_short, k16_long, endurance_rounds) = match Scale::from_env() {
        // 103 flows per sustained round; 10 000 rounds = 1.03M flows.
        Scale::Full => (10usize, vec![1u64, 2, 3], 300usize, 10usize, 10_000usize),
        Scale::Quick => (3, vec![1, 2, 3], 60, 3, 600),
    };

    // --- sustained mix, packet vs hybrid (best of TLB_BENCH_REPS) ------
    let reps: usize = std::env::var("TLB_BENCH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&r| r >= 1)
        .unwrap_or(1);
    let mut best_p: Option<FidelityEntry> = None;
    let mut best_h: Option<FidelityEntry> = None;
    for rep in 0..reps {
        let (p, h) = if rep % 2 == 0 {
            let p = perf8::sustained_leg(FidelityKind::Packet, rounds, &seeds);
            let h = perf8::sustained_leg(FidelityKind::Hybrid, rounds, &seeds);
            (p, h)
        } else {
            let h = perf8::sustained_leg(FidelityKind::Hybrid, rounds, &seeds);
            let p = perf8::sustained_leg(FidelityKind::Packet, rounds, &seeds);
            (p, h)
        };
        println!(
            "  rep {}/{reps}: sustained packet {:>8.0} ms / hybrid {:>8.0} ms",
            rep + 1,
            p.wall_ms,
            h.wall_ms
        );
        if best_p.as_ref().is_none_or(|b| p.wall_ms < b.wall_ms) {
            best_p = Some(p);
        }
        if best_h.as_ref().is_none_or(|b| h.wall_ms < b.wall_ms) {
            best_h = Some(h);
        }
    }
    let (sus_p, sus_h) = (best_p.unwrap(), best_h.unwrap());
    print_entry(&sus_p);
    print_entry(&sus_h);
    report.long_work_reduction_sustained = reduction(&sus_p, &sus_h);
    report.wall_speedup_sustained = sus_p.wall_ms / sus_h.wall_ms.max(1e-9);
    println!(
        "sustained: long-work reduction {:.1}x, wall speedup {:.2}x",
        report.long_work_reduction_sustained, report.wall_speedup_sustained
    );

    // --- k=16 fat tree, packet vs hybrid --------------------------------
    let k16_p = perf8::k16_leg(FidelityKind::Packet, k16_short, k16_long);
    let k16_h = perf8::k16_leg(FidelityKind::Hybrid, k16_short, k16_long);
    print_entry(&k16_p);
    print_entry(&k16_h);
    report.long_work_reduction_k16 = reduction(&k16_p, &k16_h);
    println!(
        "k16: long-work reduction {:.1}x",
        report.long_work_reduction_k16
    );

    // --- hybrid endurance ------------------------------------------------
    let end = perf8::endurance_leg(endurance_rounds);
    println!(
        "  endurance {:>7} flows / {} rounds: {}/{} completed, {} events, \
         {:>8.0} ms, fel bound peak {}, VmHWM {} KiB, {} migrations",
        end.flows,
        end.rounds,
        end.completed,
        end.flows,
        end.events,
        end.wall_ms,
        end.fel_bound_peak,
        end.vm_hwm_kb,
        end.fluid_migrations
    );

    if std::env::var("TLB_BENCH_ASSERT").as_deref() == Ok("1") {
        for (p, h) in [(&sus_p, &sus_h), (&k16_p, &k16_h)] {
            assert_eq!(
                p.completed, p.flows,
                "[{}] packet leg stranded flows",
                p.workload
            );
            assert_eq!(
                h.completed, h.flows,
                "[{}] hybrid leg stranded flows",
                h.workload
            );
            assert_eq!(
                p.fluid_migrations, 0,
                "[{}] packet fidelity used the fluid tier",
                p.workload
            );
            assert!(
                h.fluid_migrations > 0,
                "[{}] hybrid leg never migrated a flow",
                h.workload
            );
            let r = reduction(p, h);
            assert!(
                r >= 10.0,
                "[{}] long-flow work reduction {:.1}x below the 10x floor \
                 (packet {} vs hybrid {}) — see results/BENCH_PR8.json",
                p.workload,
                r,
                p.long_work,
                h.long_work
            );
        }
        assert_eq!(
            end.completed, end.flows,
            "endurance run stranded flows — see results/BENCH_PR8.json"
        );
        if matches!(Scale::from_env(), Scale::Full) {
            assert!(
                end.flows >= 1_000_000,
                "Full-scale endurance must cover >= 1M flows (got {})",
                end.flows
            );
        }
        assert!(end.fel_bound_peak > 0, "endurance recorded no FEL bound");
        // Bounded memory: the whole process (including the packet legs
        // above) must stay far below anything resembling a leak at 1M
        // flows. 8 GiB is generous; a fluid-tier leak would blow past it.
        assert!(
            end.vm_hwm_kb == 0 || end.vm_hwm_kb < 8 * 1024 * 1024,
            "endurance VmHWM {} KiB exceeds the 8 GiB bound",
            end.vm_hwm_kb
        );
        println!("TLB_BENCH_ASSERT: hybrid work-reduction, completion, and memory bounds hold");
    }

    report.runs = vec![sus_p, sus_h, k16_p, k16_h];
    report.endurance = Some(end);
    report.save();
}
