//! `BENCH_PR6.json` — allocation-free steady state, measured: the packet
//! arena + recycling hot path timed against the PR 5 baseline, with the
//! counting-allocator audit run on the same production job. Tracked from
//! PR 6 on.
//!
//! Reuses the `BENCH_PR5` machinery ([`crate::perf5`]): the same fig10
//! quick sweep, the same `flat` vs `reference` legs, the same best-of-reps
//! alternated-order timing discipline, and the same per-job digest
//! cross-check (the legs must disagree on nothing but wall-clock).
//!
//! Three numbers matter:
//!
//! * **`speedup_fig10`** — flat ÷ reference events/second, measured fresh
//!   in this build. PR 5 shipped at 0.97× (the pipes bought FEL residency,
//!   not throughput, on short-link fabrics). The arena changed what this
//!   ratio means: per-packet `Arrive` events now carry a 4-byte slot id
//!   instead of a `Box`, which made the *reference* leg the faster one on
//!   fig10-shaped fabrics — both legs beat their PR 5 selves, the
//!   reference by more.
//! * **`speedup_vs_pr5`** — this build's flat leg ÷ the flat leg recorded
//!   in `results/BENCH_PR5.json` (falling back to the committed baseline
//!   when the file is absent). Honest caveat: the baseline number was
//!   measured by a *past* run on whatever machine produced that file, so
//!   this ratio is only meaningful when both were produced on the same
//!   hardware — `repro_all` runs `bench_pr5` immediately before
//!   `bench_pr6`, which refreshes the baseline in place.
//! * **`steady_alloc`** — the [`tlb_engine::CountingAlloc`] delta across
//!   the second half of a fig10-shaped production run, one entry per leg.
//!   The bench binary installs the counting allocator, so these rows prove
//!   the zero-allocation claim on the exact code being timed, not just in
//!   the test harness.

use crate::perf5::{self, Leg, SweepEntry};

/// PR 5's committed flat-leg fig10 throughput (events/second), used when
/// `results/BENCH_PR5.json` cannot be read. From the checked-in baseline
/// measured on the single-core CI runner.
pub const PR5_FALLBACK_FLAT_FIG10_EPS: f64 = 9_053_913.9;

/// PR 5's committed fig10 speedup (flat ÷ reference), same provenance.
pub const PR5_FALLBACK_SPEEDUP_FIG10: f64 = 0.9717851727542738;

/// One leg's steady-state allocation audit on the fig10 production job.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct SteadyAllocEntry {
    /// `flat` or `reference` (see [`perf5::Leg`]).
    pub leg: String,
    /// Events before the audit window opened (learned: total ÷ 2).
    pub warmup_events: u64,
    /// Events inside the window.
    pub steady_events: u64,
    /// Whether a counting allocator was actually installed — `false`
    /// would make the zeros below vacuous.
    pub counting: bool,
    /// Fresh allocations inside the window.
    pub allocs: u64,
    /// Reallocations (Vec regrowth) inside the window.
    pub reallocs: u64,
    /// Frees inside the window (not gated: dropping warmup-era storage
    /// after the boundary is benign).
    pub deallocs: u64,
    /// Bytes requested inside the window.
    pub bytes: u64,
}

impl SteadyAllocEntry {
    /// Heap acquisitions — the quantity the gate pins to zero.
    pub fn acquisitions(&self) -> u64 {
        self.allocs + self.reallocs
    }
}

/// The whole `BENCH_PR6.json` document.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Pr6Report {
    /// Format tag for downstream tooling (`tlb-bench-pr6/v1`).
    pub schema: String,
    /// `quick` or `full` (`TLB_SCALE`).
    pub scale: String,
    /// Base RNG seed of the timed runs.
    pub seed: u64,
    /// Pool threads the sweeps used.
    pub threads: usize,
    /// `available_parallelism()` of the host.
    pub host_cores: usize,
    /// One entry per leg on the fig10 sweep, best-of-reps wall-clock.
    pub runs: Vec<SweepEntry>,
    /// Flat ÷ reference events/sec, measured fresh in this build.
    pub speedup_fig10: f64,
    /// The fig10 speedup `results/BENCH_PR5.json` recorded (or the
    /// committed fallback) — what this PR set out to recover from.
    pub baseline_pr5_speedup_fig10: f64,
    /// PR 5's flat-leg fig10 events/sec (from the JSON, or the fallback).
    pub baseline_pr5_flat_events_per_sec: f64,
    /// Where the baseline came from: `results/BENCH_PR5.json` or
    /// `fallback`.
    pub baseline_source: String,
    /// This build's flat leg ÷ `baseline_pr5_flat_events_per_sec`. Only
    /// hardware-comparable when the baseline file was produced on this
    /// machine (see the module docs).
    pub speedup_vs_pr5: f64,
    /// Counting-allocator audit of the fig10 production job, per leg.
    pub steady_alloc: Vec<SteadyAllocEntry>,
}

/// Read PR 5's flat-leg fig10 throughput and fig10 speedup from
/// `results/BENCH_PR5.json`; fall back to the committed constants (tagging
/// the source) when the file is absent or malformed.
pub fn pr5_baseline() -> (f64, f64, String) {
    let path = crate::out::results_dir().join("BENCH_PR5.json");
    let parsed: Option<perf5::Pr5Report> = std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok());
    match parsed {
        Some(r) => {
            let flat = r
                .runs
                .iter()
                .find(|e| e.leg == "flat" && e.workload == "fig10")
                .map(|e| e.events_per_sec);
            match flat {
                Some(eps) => (eps, r.speedup_fig10, path.display().to_string()),
                None => fallback(),
            }
        }
        None => fallback(),
    }
}

fn fallback() -> (f64, f64, String) {
    (
        PR5_FALLBACK_FLAT_FIG10_EPS,
        PR5_FALLBACK_SPEEDUP_FIG10,
        "fallback".to_string(),
    )
}

/// Run the counting-allocator audit for `leg` on the first job of the
/// fig10 sweep: learn the total event count unaudited, then replay with
/// the window opening at the halfway mark (the same learn-then-audit
/// protocol as `tests/alloc_hygiene.rs`). Serial — the counters are
/// process-wide, so a parallel batch would pollute the window.
pub fn steady_alloc(leg: Leg) -> SteadyAllocEntry {
    let (cfg, flows) = perf5::fig10_jobs(leg)
        .into_iter()
        .next()
        .expect("fig10 sweep is non-empty");
    steady_alloc_on(cfg, flows, leg.name())
}

/// The learn-then-audit protocol on an arbitrary job, labeled `label` in
/// the resulting entry.
pub fn steady_alloc_on(
    cfg: tlb_simnet::SimConfig,
    flows: Vec<tlb_workload::FlowSpec>,
    label: &str,
) -> SteadyAllocEntry {
    let mut learn = cfg.clone();
    learn.alloc_warmup_events = None;
    let total = tlb_simnet::run_one(learn, flows.clone()).events;
    let mut audited = cfg;
    audited.alloc_warmup_events = Some((total / 2).max(1));
    let r = tlb_simnet::run_one(audited, flows);
    let a = r
        .alloc_audit
        .expect("audit window never closed (warmup past end of run?)");
    SteadyAllocEntry {
        leg: label.to_string(),
        warmup_events: a.warmup_events,
        steady_events: a.steady_events,
        counting: a.counting,
        allocs: a.allocs,
        reallocs: a.reallocs,
        deallocs: a.deallocs,
        bytes: a.bytes,
    }
}

impl Pr6Report {
    /// An empty report stamped with this process's scale/seed/thread setup
    /// and the PR 5 baseline.
    pub fn new() -> Pr6Report {
        let (baseline_eps, baseline_speedup, source) = pr5_baseline();
        Pr6Report {
            schema: "tlb-bench-pr6/v1".to_string(),
            scale: match crate::Scale::from_env() {
                crate::Scale::Quick => "quick",
                crate::Scale::Full => "full",
            }
            .to_string(),
            seed: crate::scale::base_seed(),
            threads: rayon::current_num_threads(),
            host_cores: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            runs: Vec::new(),
            speedup_fig10: 1.0,
            baseline_pr5_speedup_fig10: baseline_speedup,
            baseline_pr5_flat_events_per_sec: baseline_eps,
            baseline_source: source,
            speedup_vs_pr5: 1.0,
            steady_alloc: Vec::new(),
        }
    }

    /// Write the report to `results/BENCH_PR6.json` (pretty-printed) and
    /// return the path.
    pub fn save(&self) -> std::path::PathBuf {
        let dir = crate::out::results_dir();
        let path = dir.join("BENCH_PR6.json");
        let json = serde_json::to_string_pretty(self).expect("serialize perf report");
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
        } else if let Err(e) = std::fs::write(&path, json) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        } else {
            eprintln!("[saved {}]", path.display());
        }
        path
    }
}

impl Default for Pr6Report {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_parses_the_committed_json_or_falls_back() {
        let (eps, speedup, _source) = pr5_baseline();
        // Whether it came from the file or the fallback, the numbers must
        // be in a sane range for a fig10 sweep.
        assert!(eps > 1e5, "implausible baseline events/sec: {eps}");
        assert!(
            (0.1..10.0).contains(&speedup),
            "implausible baseline speedup: {speedup}"
        );
    }

    #[test]
    fn steady_alloc_entry_counts_acquisitions() {
        let e = SteadyAllocEntry {
            leg: "flat".into(),
            warmup_events: 10,
            steady_events: 10,
            counting: true,
            allocs: 2,
            reallocs: 3,
            deallocs: 7,
            bytes: 64,
        };
        assert_eq!(e.acquisitions(), 5);
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut r = Pr6Report::new();
        r.steady_alloc.push(SteadyAllocEntry {
            leg: "flat".into(),
            warmup_events: 500_000,
            steady_events: 500_000,
            counting: true,
            allocs: 0,
            reallocs: 0,
            deallocs: 12,
            bytes: 0,
        });
        r.speedup_fig10 = 1.07;
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: Pr6Report = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema, "tlb-bench-pr6/v1");
        assert_eq!(back.steady_alloc[0].leg, "flat");
        assert_eq!(back.speedup_fig10, 1.07);
        assert_eq!(back.steady_alloc[0].acquisitions(), 0);
    }

    #[test]
    fn steady_alloc_runs_the_audit_window() {
        // This test binary does NOT install the counting allocator, so the
        // deltas must be zero with `counting == false` — proving the
        // window plumbing works and that a gate must check `counting`.
        // Small single-flow job so the test stays fast in debug builds.
        use tlb_engine::SimTime;
        use tlb_simnet::{Scheme, SimConfig};
        let cfg = SimConfig::basic_paper(Scheme::tlb_default());
        let flows = vec![tlb_workload::FlowSpec {
            id: tlb_net::FlowId(0),
            src: tlb_net::HostId(0),
            dst: tlb_net::HostId(cfg.topo.hosts_per_leaf() as u32),
            size_bytes: 200 * 1460,
            start: SimTime::ZERO,
            deadline: None,
        }];
        let e = steady_alloc_on(cfg, flows, "test");
        assert_eq!(e.leg, "test");
        assert!(!e.counting);
        assert!(e.steady_events > 0);
        assert_eq!(e.acquisitions(), 0);
    }
}
