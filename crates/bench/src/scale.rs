//! Quick/full experiment scaling.

/// How big to run the experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Default: smaller host counts / shorter traffic windows that preserve
    /// each figure's shape. Minutes for the whole suite.
    Quick,
    /// The paper's parameters (256 hosts, longer traces). Slower.
    Full,
}

impl Scale {
    /// Read `TLB_SCALE` from the environment (`full` → [`Scale::Full`]).
    pub fn from_env() -> Scale {
        match std::env::var("TLB_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Pick between the quick and full value of a parameter.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// The base RNG seed, overridable via `TLB_SEED`.
pub fn base_seed() -> u64 {
    std::env::var("TLB_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20190805) // the paper's conference dates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_selects_by_scale() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }
}
