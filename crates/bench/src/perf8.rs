//! `BENCH_PR8.json` — the hybrid fluid/packet fidelity tier, measured.
//! Tracked from PR 8 on.
//!
//! Three claims back the tier, and each gets its own leg:
//!
//! * **Work reduction** — on a sustained paper mix (100 shorts + 3
//!   10–20 MB longs per chained round) the long-flow population's packet
//!   work (`long.data_sent + long.retransmits`) collapses under hybrid
//!   fidelity: only the ~100 KB packet prefix of each long flow is ever
//!   segmented, the tail rides the fair-share rate model. The
//!   `TLB_BENCH_ASSERT=1` gate pins the reduction at ≥ 10×. Wall-clock
//!   for the same batch is recorded alongside (informative, not gated —
//!   short flows dominate the event count, so the wall ratio is smaller
//!   than the long-work ratio by construction).
//! * **Scale endurance** — a ≥ 1M-flow chained hybrid run (Full scale;
//!   Quick runs the same shape smaller) completes with bounded memory:
//!   the report records the FEL occupancy bound peak and the process's
//!   `VmHWM` from `/proc/self/status` as evidence.
//! * **k=16 coverage** — the same packet-vs-hybrid comparison on the
//!   1024-host fat tree, exercising the fluid tier's deepest path shape
//!   (edge → agg → core → agg → edge).

use tlb_engine::SimRng;
use tlb_simnet::{FidelityKind, RunReport, Scheme, SimConfig, Simulation};
use tlb_workload::{sustained_mix, BasicMixConfig};

/// One timed packet-vs-hybrid leg.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct FidelityEntry {
    /// `sustained` (leaf-spine chained mix) or `k16` (fat-tree).
    pub workload: String,
    /// `packet` or `hybrid`.
    pub fidelity: String,
    /// Independent chained jobs in the batch (distinct seeds).
    pub jobs: usize,
    /// Flows launched, summed over the batch.
    pub flows: usize,
    /// Flows completed, summed over the batch.
    pub completed: usize,
    /// Engine events processed, summed over the batch.
    pub events: u64,
    /// Wall-clock of the batch (milliseconds, serial).
    pub wall_ms: f64,
    /// `events / wall`.
    pub events_per_sec: f64,
    /// Long-class segment transmissions: `long.data_sent +
    /// long.retransmits`, summed — the quantity the ≥ 10× gate divides.
    pub long_work: u64,
    /// Flows that handed their tail to the fluid tier (0 under packet).
    pub fluid_migrations: u64,
    /// Bytes the fluid tier carried (0 under packet).
    pub fluid_bytes: u64,
}

/// The ≥ 1M-flow hybrid endurance leg.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct EnduranceEntry {
    /// Chained rounds of the sustained mix.
    pub rounds: usize,
    /// Flows launched.
    pub flows: usize,
    /// Flows completed.
    pub completed: usize,
    /// Engine events processed.
    pub events: u64,
    /// Wall-clock (milliseconds).
    pub wall_ms: f64,
    /// `events / wall`.
    pub events_per_sec: f64,
    /// Peak of the mode-independent FEL occupancy bound over the run.
    pub fel_bound_peak: u64,
    /// `VmHWM` (peak resident set, KiB) from `/proc/self/status` after
    /// the run; 0 when the file is unavailable (non-Linux).
    pub vm_hwm_kb: u64,
    /// Long flows migrated to the fluid tier.
    pub fluid_migrations: u64,
    /// Fluid flows demoted back to packets (no failures here, so 0).
    pub fluid_demotions: u64,
    /// Bytes the fluid tier carried.
    pub fluid_bytes: u64,
}

/// The whole `BENCH_PR8.json` document.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Pr8Report {
    /// Format tag for downstream tooling (`tlb-bench-pr8/v1`).
    pub schema: String,
    /// `quick` or `full` (`TLB_SCALE`).
    pub scale: String,
    /// Base RNG seed of the runs.
    pub seed: u64,
    /// Pool threads (the timed legs here run serial; recorded for parity
    /// with the other bench reports).
    pub threads: usize,
    /// `available_parallelism()` of the host.
    pub host_cores: usize,
    /// Packet and hybrid legs per workload.
    pub runs: Vec<FidelityEntry>,
    /// Sustained-mix `long_work` packet ÷ hybrid — the headline number.
    pub long_work_reduction_sustained: f64,
    /// Same ratio on the k=16 fat tree.
    pub long_work_reduction_k16: f64,
    /// Sustained-mix wall-clock packet ÷ hybrid (informative).
    pub wall_speedup_sustained: f64,
    /// The ≥ 1M-flow hybrid endurance leg.
    pub endurance: Option<EnduranceEntry>,
}

/// Chained sustained-mix job on the basic paper fabric, one seed.
fn sustained_job(
    fidelity: FidelityKind,
    rounds: usize,
    seed: u64,
) -> (SimConfig, Vec<tlb_workload::FlowSpec>, Vec<Option<u32>>) {
    let mut cfg = SimConfig::basic_paper(Scheme::tlb_default());
    cfg.fidelity = fidelity;
    cfg.audit = false;
    // Chained rounds run back-to-back in sim time; give long chains room.
    cfg.horizon = tlb_engine::SimTime::from_secs(100_000);
    let mix = BasicMixConfig::paper_default();
    let (flows, next) = sustained_mix(&cfg.topo, &mix, rounds, &mut SimRng::new(seed));
    (cfg, flows, next)
}

/// k=16 fat-tree job (same mix shape, single burst — the fat-tree leg
/// measures path-shape coverage, not endurance).
fn k16_job(
    fidelity: FidelityKind,
    n_short: usize,
    n_long: usize,
    seed: u64,
) -> (SimConfig, Vec<tlb_workload::FlowSpec>) {
    let mut cfg = SimConfig::basic_paper(Scheme::tlb_default());
    cfg.topo = tlb_net::FatTreeBuilder::new(16)
        .link_gbps(1.0)
        .target_rtt(tlb_engine::SimTime::from_micros(100))
        .build()
        .into();
    cfg.fidelity = fidelity;
    cfg.audit = false;
    cfg.horizon = tlb_engine::SimTime::from_secs(100_000);
    let mut mix = BasicMixConfig::paper_default();
    mix.n_short = n_short;
    mix.n_long = n_long;
    let flows = tlb_workload::basic_mix(&cfg.topo, &mix, &mut SimRng::new(seed));
    (cfg, flows)
}

fn fold(
    workload: &str,
    fidelity: FidelityKind,
    reports: &[RunReport],
    wall_ms: f64,
) -> FidelityEntry {
    FidelityEntry {
        workload: workload.to_string(),
        fidelity: fidelity_name(fidelity).to_string(),
        jobs: reports.len(),
        flows: reports.iter().map(|r| r.total_flows).sum(),
        completed: reports.iter().map(|r| r.completed).sum(),
        events: reports.iter().map(|r| r.events).sum(),
        wall_ms,
        events_per_sec: reports.iter().map(|r| r.events).sum::<u64>() as f64
            / (wall_ms / 1e3).max(1e-9),
        long_work: reports
            .iter()
            .map(|r| r.long.data_sent + r.long.retransmits)
            .sum(),
        fluid_migrations: reports.iter().map(|r| r.fluid_migrations).sum(),
        fluid_bytes: reports.iter().map(|r| r.fluid_bytes).sum(),
    }
}

/// JSON name of a fidelity.
pub fn fidelity_name(f: FidelityKind) -> &'static str {
    match f {
        FidelityKind::Packet => "packet",
        FidelityKind::Hybrid => "hybrid",
    }
}

/// Run the sustained comparison leg for one fidelity: `seeds.len()`
/// chained jobs, serial, timed as a batch.
pub fn sustained_leg(fidelity: FidelityKind, rounds: usize, seeds: &[u64]) -> FidelityEntry {
    let jobs: Vec<_> = seeds
        .iter()
        .map(|&s| sustained_job(fidelity, rounds, s))
        .collect();
    let t0 = std::time::Instant::now();
    let reports: Vec<_> = jobs
        .into_iter()
        .map(|(cfg, flows, next)| Simulation::new_chained(cfg, flows, next).run())
        .collect();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    fold("sustained", fidelity, &reports, wall_ms)
}

/// Run the k=16 comparison leg for one fidelity.
pub fn k16_leg(fidelity: FidelityKind, n_short: usize, n_long: usize) -> FidelityEntry {
    let (cfg, flows) = k16_job(fidelity, n_short, n_long, crate::scale::base_seed());
    let t0 = std::time::Instant::now();
    let r = Simulation::new(cfg, flows).run();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    fold("k16", fidelity, &[r], wall_ms)
}

/// `VmHWM` in KiB from `/proc/self/status`, or 0 when unavailable.
pub fn vm_hwm_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find_map(|l| {
                l.strip_prefix("VmHWM:")
                    .and_then(|rest| rest.trim().trim_end_matches(" kB").trim().parse().ok())
            })
        })
        .unwrap_or(0)
}

/// The endurance leg: one chained hybrid run of `rounds` sustained-mix
/// rounds (103 flows per round — ≥ 1M flows at the Full-scale 10 000).
pub fn endurance_leg(rounds: usize) -> EnduranceEntry {
    let (cfg, flows, next) = sustained_job(FidelityKind::Hybrid, rounds, crate::scale::base_seed());
    let n = flows.len();
    let t0 = std::time::Instant::now();
    let r = Simulation::new_chained(cfg, flows, next).run();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    EnduranceEntry {
        rounds,
        flows: n,
        completed: r.completed,
        events: r.events,
        wall_ms,
        events_per_sec: r.events as f64 / (wall_ms / 1e3).max(1e-9),
        fel_bound_peak: r.fel_bound_peak,
        vm_hwm_kb: vm_hwm_kb(),
        fluid_migrations: r.fluid_migrations,
        fluid_demotions: r.fluid_demotions,
        fluid_bytes: r.fluid_bytes,
    }
}

impl Pr8Report {
    /// An empty report stamped with this process's scale/seed/threads.
    pub fn new() -> Pr8Report {
        Pr8Report {
            schema: "tlb-bench-pr8/v1".to_string(),
            scale: match crate::Scale::from_env() {
                crate::Scale::Quick => "quick",
                crate::Scale::Full => "full",
            }
            .to_string(),
            seed: crate::scale::base_seed(),
            threads: rayon::current_num_threads(),
            host_cores: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            runs: Vec::new(),
            long_work_reduction_sustained: 1.0,
            long_work_reduction_k16: 1.0,
            wall_speedup_sustained: 1.0,
            endurance: None,
        }
    }

    /// Write the report to `results/BENCH_PR8.json` (pretty-printed) and
    /// return the path.
    pub fn save(&self) -> std::path::PathBuf {
        let dir = crate::out::results_dir();
        let path = dir.join("BENCH_PR8.json");
        let json = serde_json::to_string_pretty(self).expect("serialize perf report");
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
        } else if let Err(e) = std::fs::write(&path, json) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        } else {
            eprintln!("[saved {}]", path.display());
        }
        path
    }
}

impl Default for Pr8Report {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_json() {
        let mut r = Pr8Report::new();
        r.runs.push(FidelityEntry {
            workload: "sustained".into(),
            fidelity: "hybrid".into(),
            jobs: 3,
            flows: 1236,
            completed: 1236,
            events: 1_000_000,
            wall_ms: 120.0,
            events_per_sec: 8.3e6,
            long_work: 900,
            fluid_migrations: 36,
            fluid_bytes: 500_000_000,
        });
        r.long_work_reduction_sustained = 42.0;
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: Pr8Report = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema, "tlb-bench-pr8/v1");
        assert_eq!(back.runs[0].fidelity, "hybrid");
        assert_eq!(back.long_work_reduction_sustained, 42.0);
    }

    #[test]
    fn vm_hwm_parses_on_linux() {
        // On Linux the probe must see a positive peak (this test process
        // has certainly touched memory); elsewhere 0 is the contract.
        let hwm = vm_hwm_kb();
        if cfg!(target_os = "linux") {
            assert!(hwm > 0, "VmHWM unavailable on Linux");
        }
    }

    #[test]
    fn sustained_leg_reduces_long_work() {
        // One tiny round, both fidelities: the hybrid leg must complete
        // the same flows with a fraction of the long-flow segment work.
        let p = sustained_leg(FidelityKind::Packet, 1, &[7]);
        let h = sustained_leg(FidelityKind::Hybrid, 1, &[7]);
        assert_eq!(p.flows, h.flows);
        assert_eq!(p.completed, p.flows, "packet leg stranded flows");
        assert_eq!(h.completed, h.flows, "hybrid leg stranded flows");
        assert_eq!(p.fluid_migrations, 0);
        assert!(h.fluid_migrations > 0);
        assert!(
            p.long_work >= 10 * h.long_work.max(1),
            "expected >=10x long-work reduction even on one round: {} vs {}",
            p.long_work,
            h.long_work
        );
    }
}
