//! # tlb-bench — the paper-reproduction harness
//!
//! One binary per figure of the paper's evaluation (`fig03` … `fig17`), a
//! `repro_all` driver, and criterion micro-benchmarks (the Fig. 15 CPU
//! analogue). Each binary prints the rows/series its figure plots and
//! writes the same text to `results/<id>.txt`.
//!
//! Scale control: set `TLB_SCALE=full` for paper-scale parameters (slower);
//! the default `quick` preserves every experiment's *shape* at a fraction
//! of the runtime. `TLB_SEED` overrides the base seed.

pub mod harness;
pub mod out;
pub mod perf;
pub mod perf4;
pub mod perf5;
pub mod perf6;
pub mod perf8;
pub mod perf9;
pub mod scale;

pub use harness::*;
pub use out::Out;
pub use perf::{PerfEntry, PerfReport};
pub use perf4::{MacroEntry, MicroEntry, Pr4Report};
pub use perf5::{Pr5Report, SweepEntry};
pub use perf6::{Pr6Report, SteadyAllocEntry};
pub use perf8::{EnduranceEntry, FidelityEntry, Pr8Report};
pub use perf9::{EngineEntry, Pr9Report};
pub use scale::Scale;
