//! Tee'd output: print to stdout and capture into `results/<id>.txt`.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// Collects everything an experiment prints and saves it under `results/`.
pub struct Out {
    id: String,
    buf: String,
}

impl Out {
    /// Start an output capture for experiment `id` (e.g. `"fig10"`).
    pub fn new(id: &str) -> Out {
        let mut o = Out {
            id: id.to_string(),
            buf: String::new(),
        };
        o.line(&format!(
            "# {} — TLB reproduction ({} scale, seed {})",
            id,
            match crate::Scale::from_env() {
                crate::Scale::Quick => "quick",
                crate::Scale::Full => "full",
            },
            crate::scale::base_seed()
        ));
        o
    }

    /// Print one line and record it.
    pub fn line(&mut self, s: &str) {
        println!("{s}");
        let _ = writeln!(self.buf, "{s}");
    }

    /// Print a blank line.
    pub fn blank(&mut self) {
        self.line("");
    }

    /// Where the capture will be written.
    pub fn path(&self) -> PathBuf {
        results_dir().join(format!("{}.txt", self.id))
    }

    /// Write the capture to `results/<id>.txt`.
    pub fn save(&self) {
        let dir = results_dir();
        if let Err(e) = fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
            return;
        }
        let path = self.path();
        if let Err(e) = fs::write(&path, &self.buf) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        } else {
            eprintln!("[saved {}]", path.display());
        }
    }
}

/// `results/` at the workspace root (or cwd as a fallback).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = <root>/crates/bench at compile time.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("results");
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_accumulates() {
        let mut o = Out::new("selftest");
        o.line("hello");
        o.blank();
        assert!(o.buf.contains("hello"));
        assert!(o.buf.contains("selftest"));
        assert!(o.path().ends_with("results/selftest.txt"));
    }
}
