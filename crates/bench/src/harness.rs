//! Shared experiment builders used by the per-figure binaries.

use crate::scale::{base_seed, Scale};
use tlb_engine::{SimRng, SimTime};
use tlb_simnet::{RunReport, Scheme, SimConfig, Simulation};
use tlb_workload::{basic_mix, BasicMixConfig, FlowSpec, PoissonWorkload, SizeDist, UniformBytes};

/// The §6.1 basic scenario: the paper's mixed workload on the 15-path
/// fabric. `n_short`/`n_long` as in the figure being reproduced.
pub fn basic_scenario(scheme: Scheme, n_short: usize, n_long: usize, seed: u64) -> RunReport {
    let cfg = SimConfig::basic_paper(scheme);
    let mut mix = BasicMixConfig::paper_default();
    mix.n_short = n_short;
    mix.n_long = n_long;
    let flows = basic_mix(&cfg.topo, &mix, &mut SimRng::new(seed));
    Simulation::new(cfg, flows).run()
}

/// The §6.1 scenario with *sustained* short-flow load: `n_short` clients
/// each run `rounds` short flows back-to-back, so m_S stays ≈ n_short for
/// the whole run — the paper's premise for Fig. 3/4/7/8/9.
pub fn sustained_scenario(
    scheme: Scheme,
    n_short: usize,
    n_long: usize,
    rounds: usize,
    seed: u64,
) -> RunReport {
    let cfg = SimConfig::basic_paper(scheme);
    let mut mix = BasicMixConfig::paper_default();
    mix.n_short = n_short;
    mix.n_long = n_long;
    let (flows, next) =
        tlb_workload::sustained_mix(&cfg.topo, &mix, rounds, &mut SimRng::new(seed));
    Simulation::new_chained(cfg, flows, next).run()
}

/// The granularity-study variants of Fig. 3/4: flow-, flowlet- and
/// packet-level forwarding are embodied by ECMP, LetFlow and RPS, exactly
/// as §2.2 describes.
pub fn granularity_schemes() -> Vec<(&'static str, Scheme)> {
    vec![
        ("flow", Scheme::Ecmp),
        ("flowlet", Scheme::letflow_default()),
        ("packet", Scheme::Rps),
    ]
}

/// Large-scale (§6.2) jobs: one `(cfg, flows)` pair per scheme at one load.
/// Shared flow set per load so schemes are compared on identical traffic.
pub fn large_scale_jobs(
    schemes: &[Scheme],
    dist: &impl SizeDist,
    load: f64,
    scale: Scale,
) -> Vec<(SimConfig, Vec<FlowSpec>)> {
    // Keep the paper's 4:1 oversubscription at both scales (it is what makes
    // the uplinks contend); quick mode shortens the trace instead.
    let hosts_per_leaf = scale.pick(32, 32);
    let duration = scale.pick(SimTime::from_millis(25), SimTime::from_millis(150));
    schemes
        .iter()
        .map(|scheme| {
            let cfg = SimConfig::large_scale(scheme.clone(), hosts_per_leaf);
            let wl = PoissonWorkload {
                load,
                dist,
                duration,
                deadline_lo: SimTime::from_millis(5),
                deadline_hi: SimTime::from_millis(25),
                short_threshold: 100_000,
                inter_leaf_only: true,
            };
            let flows = wl.generate(&cfg.topo, &mut SimRng::new(base_seed() ^ load.to_bits()));
            (cfg, flows)
        })
        .collect()
}

/// The load axis of Fig. 10–12.
pub fn load_sweep(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Quick => vec![0.2, 0.4, 0.6, 0.8],
        Scale::Full => vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8],
    }
}

/// The §7 testbed scenario: 10 paths at 20 Mbit/s, long flows > 5 MB,
/// deadlines U[2 s, 6 s], shorts bursting over a couple of seconds.
pub fn testbed_scenario(scheme: Scheme, n_short: usize, n_long: usize, seed: u64) -> RunReport {
    let cfg = SimConfig::testbed(scheme);
    let mut rng = SimRng::new(seed);
    let short_dist = UniformBytes {
        lo: 40_000,
        hi: 100_000,
    };
    let long_dist = UniformBytes {
        lo: 5_000_000,
        hi: 10_000_000,
    };
    let senders: Vec<_> = cfg.topo.hosts_of(tlb_net::LeafId(0)).collect();
    let receivers: Vec<_> = cfg.topo.hosts_of(tlb_net::LeafId(1)).collect();
    let mut flows = Vec::new();
    for i in 0..n_long {
        flows.push(FlowSpec {
            id: tlb_net::FlowId(0),
            src: senders[i % senders.len()],
            dst: receivers[i % receivers.len()],
            size_bytes: long_dist.sample(&mut rng),
            start: SimTime::ZERO,
            deadline: None,
        });
    }
    // Short flows arrive Poisson over a 4 s window (the testbed's
    // second-scale RTTs stretch everything by ~100x vs the NS2 setup).
    let window = 4.0;
    let mut t = 0.0;
    for i in 0..n_short {
        t += rng.exp(window / n_short as f64);
        let deadline = SimTime::from_secs(2) + SimTime::from_nanos(rng.gen_range(4_000_000_001));
        flows.push(FlowSpec {
            id: tlb_net::FlowId(0),
            src: senders[(n_long + i) % senders.len()],
            dst: receivers[rng.index(receivers.len())],
            size_bytes: short_dist.sample(&mut rng),
            start: SimTime::from_secs_f64(t),
            deadline: Some(deadline),
        });
    }
    flows.sort_by_key(|f| f.start);
    for (i, f) in flows.iter_mut().enumerate() {
        f.id = tlb_net::FlowId(i as u32);
    }
    Simulation::new(cfg, flows).run()
}

/// Shared by Fig. 13/14: run all five schemes at each x-value of the
/// testbed scenario and print short-flow AFCT and long-flow throughput
/// normalized to TLB (the paper's presentation).
pub fn testbed_normalized_panels(
    out: &mut crate::Out,
    xs: &[usize],
    params: impl Fn(usize) -> (usize, usize),
    seed: u64,
) {
    use rayon::prelude::*;
    // Testbed runs are cheap; average 3 seeds to keep the normalized panels
    // from jumping with one unlucky hash placement.
    let seeds: Vec<u64> = (0..3).map(|i| seed + i).collect();
    let schemes = Scheme::paper_set();
    let names: Vec<&str> = schemes.iter().map(|s| s.name()).collect();
    let mut afct: Vec<Vec<f64>> = Vec::new();
    let mut gput: Vec<Vec<f64>> = Vec::new();
    for &x in xs {
        let (n_short, n_long) = params(x);
        let cells: Vec<(f64, f64)> = schemes
            .par_iter()
            .map(|s| {
                let runs: Vec<_> = seeds
                    .iter()
                    .map(|&sd| testbed_scenario(s.clone(), n_short, n_long, sd))
                    .collect();
                let n = runs.len() as f64;
                (
                    runs.iter().map(|r| r.fct_short.afct).sum::<f64>() / n,
                    runs.iter().map(|r| r.long_throughput()).sum::<f64>() / n,
                )
            })
            .collect();
        afct.push(cells.iter().map(|c| c.0).collect());
        gput.push(cells.iter().map(|c| c.1).collect());
    }
    let tlb = names.iter().position(|n| *n == "TLB").unwrap();

    let header = {
        let mut h = format!("{:<6}", "x");
        for n in &names {
            h.push_str(&format!(" {n:>10}"));
        }
        h
    };
    out.line("(a) AFCT of short flows, normalized to TLB (>1 = slower than TLB)");
    out.line(&header);
    for (i, &x) in xs.iter().enumerate() {
        let mut row = format!("{x:<6}");
        for si in 0..names.len() {
            row.push_str(&format!(" {:>10.2}", afct[i][si] / afct[i][tlb]));
        }
        out.line(&row);
    }
    out.blank();
    out.line("(b) long-flow throughput, normalized to TLB (<1 = less than TLB)");
    out.line(&header);
    for (i, &x) in xs.iter().enumerate() {
        let mut row = format!("{x:<6}");
        for si in 0..names.len() {
            row.push_str(&format!(" {:>10.2}", gput[i][si] / gput[i][tlb]));
        }
        out.line(&row);
    }
    out.blank();
}

/// Asymmetric §7 scenario: degrade 2 leaf-0 uplinks by `bw_factor` and
/// `extra_delay`, then run the basic mixed workload.
pub fn asymmetric_scenario(
    scheme: Scheme,
    bw_factor: f64,
    extra_delay: SimTime,
    seed: u64,
) -> RunReport {
    let mut cfg = SimConfig::basic_paper(scheme);
    // "2 randomly selected leaf-to-spine links" — fixed choice keeps the
    // comparison identical across schemes.
    cfg.topo.degrade_link(
        tlb_net::LeafId(0),
        tlb_net::SpineId(3),
        bw_factor,
        extra_delay,
    );
    cfg.topo.degrade_link(
        tlb_net::LeafId(0),
        tlb_net::SpineId(11),
        bw_factor,
        extra_delay,
    );
    let mut mix = BasicMixConfig::paper_default();
    mix.n_short = 100;
    mix.n_long = 4;
    let flows = basic_mix(&cfg.topo, &mix, &mut SimRng::new(seed));
    Simulation::new(cfg, flows).run()
}

/// The shared driver of Fig. 10/11: sweep the paper's five schemes over the
/// load axis on one flow-size distribution and print the four panels
/// (AFCT, p99 FCT, deadline miss %, long-flow throughput).
/// One labelled panel extractor for the four-panel figures.
type Panel = (&'static str, Box<dyn Fn(&RunReport) -> f64>);

pub fn large_scale_figure(id: &str, title: &str, dist: &impl SizeDist) {
    let scale = Scale::from_env();
    let mut out = crate::Out::new(id);
    out.line(title);
    out.line(&format!(
        "  topology: 8 ToR x 8 core, {} hosts, 1 Gbit/s, DCTCP",
        scale.pick(8 * 16, 8 * 32)
    ));
    out.blank();

    let schemes = Scheme::paper_set();
    let loads = load_sweep(scale);
    // One big parallel batch: every (load, scheme) cell.
    let mut jobs = Vec::new();
    for &load in &loads {
        jobs.extend(large_scale_jobs(&schemes, dist, load, scale));
    }
    let reports = tlb_simnet::run_all(jobs);
    let cell = |li: usize, si: usize| &reports[li * schemes.len() + si];

    let names: Vec<&str> = schemes.iter().map(|s| s.name()).collect();
    let header = {
        let mut h = format!("{:<6}", "load");
        for n in &names {
            h.push_str(&format!(" {n:>10}"));
        }
        h
    };

    let panels: Vec<Panel> = vec![
        (
            "(a) short-flow AFCT (ms)",
            Box::new(|r: &RunReport| r.fct_short.afct * 1e3),
        ),
        (
            "(b) short-flow 99th-pct FCT (ms)",
            Box::new(|r: &RunReport| r.fct_short.p99 * 1e3),
        ),
        (
            "(c) short-flow deadline miss (%)",
            Box::new(|r: &RunReport| r.fct_short.deadline_miss * 100.0),
        ),
        (
            "(d) long-flow throughput (Mbit/s)",
            Box::new(|r: &RunReport| r.long_throughput() * 8.0 / 1e6),
        ),
    ];
    for (panel, f) in &panels {
        out.line(panel);
        out.line(&header);
        for (li, load) in loads.iter().enumerate() {
            let mut row = format!("{load:<6.1}");
            for si in 0..schemes.len() {
                row.push_str(&format!(" {:>10.2}", f(cell(li, si))));
            }
            out.line(&row);
        }
        out.blank();
    }

    // Panel (a) as an ASCII chart: AFCT vs load per scheme.
    out.line("short-flow AFCT vs load (ms):");
    let charted: Vec<(&str, Vec<(f64, f64)>)> = names
        .iter()
        .enumerate()
        .map(|(si, n)| {
            let pts: Vec<(f64, f64)> = loads
                .iter()
                .enumerate()
                .map(|(li, &l)| (l, cell(li, si).fct_short.afct * 1e3))
                .collect();
            (*n, pts)
        })
        .collect();
    let series_refs: Vec<(&str, &[(f64, f64)])> =
        charted.iter().map(|(n, v)| (*n, v.as_slice())).collect();
    for line in tlb_metrics::chart(&series_refs, 64, 14).lines() {
        out.line(line);
    }
    out.blank();

    // Headline comparison at the top load: the paper quotes AFCT reductions
    // of TLB vs each baseline at load 0.8.
    let li = loads.len() - 1;
    let tlb_idx = names.iter().position(|n| *n == "TLB").expect("TLB in set");
    let tlb_afct = cell(li, tlb_idx).fct_short.afct;
    let mut line = format!("TLB AFCT change at load {:.1}: ", loads[li]);
    for (si, n) in names.iter().enumerate() {
        if si != tlb_idx {
            line.push_str(&format!(
                "{}: {:+.0}%  ",
                n,
                pct_change(tlb_afct, cell(li, si).fct_short.afct)
            ));
        }
    }
    out.line(&line);
    out.line("expected shape (paper): TLB lowest AFCT/p99/miss at high load;");
    out.line("TLB highest long-flow throughput; ECMP worst overall.");
    out.save();
}

/// Print the two TLB-normalized panels shared by Fig. 16/17: AFCT (panel a)
/// and long-flow throughput (panel b) per x-value per scheme.
pub fn normalized_panels(
    out: &mut crate::Out,
    xlabel: &str,
    xs: &[String],
    names: &[&str],
    afct: &[Vec<f64>],
    gput: &[Vec<f64>],
) {
    let tlb = names.iter().position(|n| *n == "TLB").expect("TLB column");
    let header = {
        let mut h = format!("{xlabel:<16}");
        for n in names {
            h.push_str(&format!(" {n:>10}"));
        }
        h
    };
    out.line("(a) AFCT of short flows, normalized to TLB (>1 = slower than TLB)");
    out.line(&header);
    for (i, x) in xs.iter().enumerate() {
        let mut row = format!("{x:<16}");
        for si in 0..names.len() {
            row.push_str(&format!(" {:>10.2}", afct[i][si] / afct[i][tlb]));
        }
        out.line(&row);
    }
    out.blank();
    out.line("(b) long-flow throughput, normalized to TLB (<1 = less than TLB)");
    out.line(&header);
    for (i, x) in xs.iter().enumerate() {
        let mut row = format!("{x:<16}");
        for si in 0..names.len() {
            row.push_str(&format!(" {:>10.2}", gput[i][si] / gput[i][tlb]));
        }
        out.line(&row);
    }
    out.blank();
}

/// Render a `(time, value)` series as a compact text sparkline table:
/// at most `n` evenly spaced points.
pub fn sample_series(series: &[(f64, f64)], n: usize) -> Vec<(f64, f64)> {
    if series.len() <= n {
        return series.to_vec();
    }
    (0..n)
        .map(|i| series[i * (series.len() - 1) / (n - 1)])
        .collect()
}

/// Geometric-ish summary of how scheme `x` compares to baseline `b`
/// (negative = x is lower/better for latency metrics).
pub fn pct_change(x: f64, b: f64) -> f64 {
    if b == 0.0 {
        0.0
    } else {
        (x - b) / b * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_series_downsamples() {
        let s: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, i as f64)).collect();
        let d = sample_series(&s, 5);
        assert_eq!(d.len(), 5);
        assert_eq!(d[0].0, 0.0);
        assert_eq!(d[4].0, 99.0);
        let short = sample_series(&s[..3], 5);
        assert_eq!(short.len(), 3);
    }

    #[test]
    fn pct_change_signs() {
        assert!((pct_change(80.0, 100.0) + 20.0).abs() < 1e-9);
        assert!((pct_change(120.0, 100.0) - 20.0).abs() < 1e-9);
        assert_eq!(pct_change(1.0, 0.0), 0.0);
    }

    #[test]
    fn granularity_set_matches_fig3() {
        let g = granularity_schemes();
        assert_eq!(g.len(), 3);
        assert_eq!(g[0].0, "flow");
        assert_eq!(g[2].1.name(), "RPS");
    }
}
