//! `BENCH_PR4.json` — future-event-list backend comparison, tracked from
//! PR 4 on.
//!
//! Two views of the same question (is the calendar queue actually faster
//! than the binary heap it replaced?):
//!
//! * **micro** — a classic hold pattern straight on [`EventQueue`]: prefill
//!   to a fixed depth, then pop-one/push-one at that depth with a
//!   simulation-shaped offset mix (mostly sub-60 µs packet events, ~5%
//!   10 ms timer events). Reported per backend per depth, with a checksum
//!   over the popped stream cross-checked between backends — the backends
//!   must disagree on *nothing* but wall-clock.
//! * **macro** — the fig10-style quick sweep (schemes × loads through
//!   [`tlb_simnet::run_all`]) with every job's [`SimConfig::fel`] pinned to
//!   one backend, then the other. Events/second is the headline number;
//!   per-job report digests are asserted identical, and the queue-depth
//!   histogram (p50/p99 of [`RunReport::fel_depth`]) shows what depths the
//!   real simulator actually holds.
//!
//! `TLB_BENCH_ASSERT=1` turns the calendar-no-slower-than-heap expectation
//! into a hard assertion (the CI perf-smoke step sets it).

use tlb_engine::{EventQueue, FelKind, SimRng, SimTime};
use tlb_simnet::{RunReport, Scheme, SimConfig};
use tlb_workload::FlowSpec;

/// One micro hold-pattern measurement.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct MicroEntry {
    /// `calendar` or `heap`.
    pub backend: String,
    /// Held queue depth (events resident during the timed loop).
    pub depth: usize,
    /// Pop+push pairs executed.
    pub pairs: u64,
    /// Wall-clock of the timed loop (milliseconds).
    pub wall_ms: f64,
    /// Pop+push pairs per second.
    pub pairs_per_sec: f64,
    /// Order-sensitive fold of the popped `(time, payload)` stream; equal
    /// across backends by the determinism contract.
    pub checksum: u64,
}

/// One macro sweep measurement.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct MacroEntry {
    /// `calendar` or `heap`.
    pub backend: String,
    /// Jobs in the sweep batch.
    pub jobs: usize,
    /// Engine events processed, summed over the batch.
    pub events: u64,
    /// Wall-clock of the batch (milliseconds).
    pub wall_ms: f64,
    /// `events / wall` — the headline throughput.
    pub events_per_sec: f64,
    /// Median pending-event count across the batch's FEL depth samples.
    pub depth_p50: f64,
    /// 99th-percentile pending-event count.
    pub depth_p99: f64,
}

/// The whole `BENCH_PR4.json` document.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Pr4Report {
    /// Format tag for downstream tooling (`tlb-bench-pr4/v1`).
    pub schema: String,
    /// `quick` or `full` (`TLB_SCALE`).
    pub scale: String,
    /// Base RNG seed of the timed runs.
    pub seed: u64,
    /// Pool threads the macro sweeps used.
    pub threads: usize,
    /// `available_parallelism()` of the host.
    pub host_cores: usize,
    /// Hold-pattern results, one entry per backend per depth.
    pub micro: Vec<MicroEntry>,
    /// Sweep results, one entry per backend. (`macro` is a Rust keyword,
    /// hence the field name.)
    pub macro_runs: Vec<MacroEntry>,
    /// Calendar events/sec ÷ heap events/sec on the macro sweep.
    pub macro_speedup: f64,
}

/// The depths the micro hold pattern visits.
pub const MICRO_DEPTHS: [usize; 5] = [100, 1_000, 10_000, 100_000, 1_000_000];

fn backend_name(kind: FelKind) -> &'static str {
    match kind {
        FelKind::Calendar => "calendar",
        FelKind::Heap => "heap",
    }
}

/// A simulation-shaped scheduling offset: mostly sub-60 µs packet-scale
/// events with a ~5% tail of 10 ms RTO-scale timers (which is what pushes
/// the calendar's overflow tier in real runs).
#[inline]
fn offset(rng: &mut SimRng) -> SimTime {
    if rng.gen_range(20) == 0 {
        SimTime::from_nanos(10_000_000 + rng.gen_range(1_000_000))
    } else {
        SimTime::from_nanos(1 + rng.gen_range(60_000))
    }
}

/// Run the hold pattern on one backend at one depth: prefill `depth`
/// events, then `pairs` pop-one/push-one cycles. Returns the timed entry;
/// the prefill is untimed.
pub fn micro_hold(kind: FelKind, depth: usize, pairs: u64, seed: u64) -> MicroEntry {
    let mut rng = SimRng::new(seed ^ depth as u64);
    let mut q: EventQueue<u64> = EventQueue::with_capacity_and_kind(depth, kind);
    for i in 0..depth {
        let d = offset(&mut rng);
        q.push(q.now() + d, i as u64);
    }

    let mut checksum = 0u64;
    let t0 = std::time::Instant::now();
    for _ in 0..pairs {
        let (t, ev) = q.pop().expect("hold pattern never empties");
        checksum = checksum
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(t.as_nanos() ^ ev);
        let d = offset(&mut rng);
        q.push(t + d, ev);
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(q.len(), depth, "hold pattern must keep depth constant");
    assert_eq!(q.monotonicity_violations(), 0);

    MicroEntry {
        backend: backend_name(kind).to_string(),
        depth,
        pairs,
        wall_ms,
        pairs_per_sec: if wall_ms > 0.0 {
            pairs as f64 / (wall_ms / 1e3)
        } else {
            0.0
        },
        checksum,
    }
}

/// The macro batch: the fig10 quick sweep (paper scheme set × quick load
/// axis on the web-search distribution) with every job's FEL pinned to
/// `kind`. Identical traffic regardless of `kind` — only the queue
/// implementation differs.
pub fn macro_jobs(kind: FelKind) -> Vec<(SimConfig, Vec<FlowSpec>)> {
    let web = tlb_workload::web_search();
    let schemes = Scheme::paper_set();
    let mut jobs = Vec::new();
    for &load in &crate::load_sweep(crate::Scale::Quick) {
        jobs.extend(crate::large_scale_jobs(
            &schemes,
            &web,
            load,
            crate::Scale::Quick,
        ));
    }
    for (cfg, _) in &mut jobs {
        cfg.fel = kind;
    }
    jobs
}

/// The per-job report fields the two backends must agree on bit-for-bit:
/// `(events, drops, marks, completed, afct bits, long-goodput bits)`.
pub type JobDigest = (u64, u64, u64, usize, u64, u64);

/// The fields of a report that the two backends must agree on bit-for-bit.
fn digest(r: &RunReport) -> JobDigest {
    (
        r.events,
        r.drops,
        r.marks,
        r.completed,
        r.fct_short.afct.to_bits(),
        r.fct_long.mean_goodput.to_bits(),
    )
}

/// Time the macro sweep on one backend (on `threads` pool threads) and
/// return the entry plus the per-job digests for cross-checking.
pub fn macro_sweep(kind: FelKind, threads: usize) -> (MacroEntry, Vec<JobDigest>) {
    let jobs = macro_jobs(kind);
    let n_jobs = jobs.len();
    let t0 = std::time::Instant::now();
    let reports = rayon::with_threads(threads, || tlb_simnet::run_all(jobs));
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let events: u64 = reports.iter().map(|r| r.events).sum();
    let mut depth = tlb_metrics::SampleSet::new();
    for r in &reports {
        depth.merge(&r.fel_depth);
    }
    let q = depth.quantiles(&[0.50, 0.99]);
    let digests = reports.iter().map(digest).collect();

    (
        MacroEntry {
            backend: backend_name(kind).to_string(),
            jobs: n_jobs,
            events,
            wall_ms,
            events_per_sec: if wall_ms > 0.0 {
                events as f64 / (wall_ms / 1e3)
            } else {
                0.0
            },
            depth_p50: q[0],
            depth_p99: q[1],
        },
        digests,
    )
}

impl Pr4Report {
    /// An empty report stamped with this process's scale/seed/thread setup.
    pub fn new() -> Pr4Report {
        Pr4Report {
            schema: "tlb-bench-pr4/v1".to_string(),
            scale: match crate::Scale::from_env() {
                crate::Scale::Quick => "quick",
                crate::Scale::Full => "full",
            }
            .to_string(),
            seed: crate::scale::base_seed(),
            threads: rayon::current_num_threads(),
            host_cores: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            micro: Vec::new(),
            macro_runs: Vec::new(),
            macro_speedup: 1.0,
        }
    }

    /// Write the report to `results/BENCH_PR4.json` (pretty-printed) and
    /// return the path.
    pub fn save(&self) -> std::path::PathBuf {
        let dir = crate::out::results_dir();
        let path = dir.join("BENCH_PR4.json");
        let json = serde_json::to_string_pretty(self).expect("serialize perf report");
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
        } else if let Err(e) = std::fs::write(&path, json) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        } else {
            eprintln!("[saved {}]", path.display());
        }
        path
    }
}

impl Default for Pr4Report {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_hold_checksums_agree_across_backends() {
        for depth in [100usize, 1_000] {
            let cal = micro_hold(FelKind::Calendar, depth, 5_000, 42);
            let heap = micro_hold(FelKind::Heap, depth, 5_000, 42);
            assert_eq!(
                cal.checksum, heap.checksum,
                "backends diverged at depth {depth}"
            );
            assert_eq!(cal.pairs, heap.pairs);
            assert!(cal.pairs_per_sec > 0.0 && heap.pairs_per_sec > 0.0);
        }
    }

    #[test]
    fn macro_jobs_pin_the_backend() {
        for kind in [FelKind::Calendar, FelKind::Heap] {
            let jobs = macro_jobs(kind);
            assert!(!jobs.is_empty());
            assert!(jobs.iter().all(|(cfg, _)| cfg.fel == kind));
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut r = Pr4Report::new();
        r.micro.push(MicroEntry {
            backend: "calendar".into(),
            depth: 100,
            pairs: 1000,
            wall_ms: 1.0,
            pairs_per_sec: 1e6,
            checksum: 7,
        });
        r.macro_runs.push(MacroEntry {
            backend: "calendar".into(),
            jobs: 20,
            events: 1_000_000,
            wall_ms: 500.0,
            events_per_sec: 2e6,
            depth_p50: 120.0,
            depth_p99: 400.0,
        });
        r.macro_speedup = 1.3;
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: Pr4Report = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema, "tlb-bench-pr4/v1");
        assert_eq!(back.micro.len(), 1);
        assert_eq!(back.macro_runs[0].backend, "calendar");
        assert_eq!(back.macro_speedup, 1.3);
    }
}
