//! End-to-end simulator throughput: events/second for a small §6.1-style
//! run under each scheme. This is the number that decides how long the
//! paper-scale figure reproductions take.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tlb_engine::SimRng;
use tlb_simnet::{Scheme, SimConfig, Simulation};
use tlb_workload::{basic_mix, BasicMixConfig};

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    let mut mix = BasicMixConfig::paper_default();
    mix.n_short = 40;
    mix.n_long = 2;
    mix.long_lo = 2_000_000;
    mix.long_hi = 2_000_000;

    // Measure the event count once so the group can report events/second.
    let probe = {
        let cfg = SimConfig::basic_paper(Scheme::Ecmp);
        let flows = basic_mix(&cfg.topo, &mix, &mut SimRng::new(1));
        Simulation::new(cfg, flows).run()
    };
    group.throughput(Throughput::Elements(probe.events));

    for scheme in [
        Scheme::Ecmp,
        Scheme::Rps,
        Scheme::letflow_default(),
        Scheme::tlb_default(),
    ] {
        group.bench_function(scheme.name(), |b| {
            b.iter(|| {
                let cfg = SimConfig::basic_paper(scheme.clone());
                let flows = basic_mix(&cfg.topo, &mix, &mut SimRng::new(1));
                let r = Simulation::new(cfg, flows).run();
                assert_eq!(r.completed, r.total_flows);
                r.events
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
