//! Simulation-core micro-benchmarks: event-queue throughput (both FEL
//! backends) and RNG speed (the engine bounds the whole simulator's event
//! rate).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use tlb_engine::{EventQueue, FelKind, SimRng, SimTime};

const BACKENDS: [(FelKind, &str); 2] = [(FelKind::Calendar, "calendar"), (FelKind::Heap, "heap")];

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for (kind, name) in BACKENDS {
        for &n in &[1_000usize, 100_000] {
            group.throughput(Throughput::Elements(n as u64));
            group.bench_function(format!("{name}/push_pop_{n}"), |b| {
                b.iter_batched_ref(
                    || {
                        (
                            EventQueue::<u64>::with_capacity_and_kind(n, kind),
                            SimRng::new(1),
                        )
                    },
                    |(q, rng)| {
                        for i in 0..n {
                            q.push(SimTime::from_nanos(rng.gen_range(1_000_000)), i as u64);
                        }
                        let mut acc = 0u64;
                        while let Some((_, e)) = q.pop() {
                            acc ^= e;
                        }
                        acc
                    },
                    BatchSize::SmallInput,
                )
            });
        }
        // The simulator's steady-state pattern: the queue stays
        // ~constant-size while events are pushed and popped in alternation.
        group.bench_function(format!("{name}/steady_state_churn"), |b| {
            b.iter_batched_ref(
                || {
                    let mut q = EventQueue::<u32>::with_capacity_and_kind(4096, kind);
                    let mut rng = SimRng::new(2);
                    for i in 0..2048 {
                        q.push(SimTime::from_nanos(rng.gen_range(1_000_000)), i);
                    }
                    (q, rng)
                },
                |(q, rng)| {
                    let mut acc = 0u32;
                    for _ in 0..4096 {
                        let (t, e) = q.pop().expect("non-empty");
                        acc ^= e;
                        q.push(t + SimTime::from_nanos(1 + rng.gen_range(10_000)), e);
                    }
                    acc
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("next_u64_x1024", |b| {
        let mut rng = SimRng::new(7);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1024 {
                acc ^= rng.next_u64();
            }
            acc
        })
    });
    group.bench_function("exp_x1024", |b| {
        let mut rng = SimRng::new(7);
        b.iter(|| {
            let mut acc = 0.0f64;
            for _ in 0..1024 {
                acc += rng.exp(1.0);
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_event_queue, bench_rng);
criterion_main!(benches);
