//! Per-packet forwarding-decision cost of each scheme — the precise
//! counterpart of Fig. 15(a)'s switch CPU comparison (see DESIGN.md for the
//! substitution rationale). Lower is cheaper for a real switch's data plane.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use tlb_engine::{SimRng, SimTime};
use tlb_net::{FlowId, HostId, LinkProps, Packet, PktKind};
use tlb_simnet::{LbDispatch, Scheme};
use tlb_switch::{LoadBalancer, OutPort, PortView, QueueCfg};

fn make_ports(n: usize) -> Vec<OutPort> {
    let link = LinkProps::gbps(1.0, SimTime::ZERO);
    let cfg = QueueCfg {
        capacity_pkts: 256,
        ecn_threshold_pkts: Some(20),
    };
    (0..n)
        .map(|i| {
            let mut p = OutPort::new(link, cfg);
            for s in 0..(i * 5 % 23) {
                p.enqueue(
                    Packet::data(
                        FlowId(9999),
                        HostId(0),
                        HostId(1),
                        s as u32,
                        1460,
                        40,
                        SimTime::ZERO,
                    ),
                    SimTime::ZERO,
                );
            }
            p
        })
        .collect()
}

fn stream(n: usize) -> Vec<Packet> {
    let mut rng = SimRng::new(5);
    (0..n)
        .map(|i| {
            let flow = FlowId(rng.gen_range(128) as u32);
            match i % 101 {
                0 => Packet::control(flow, HostId(0), HostId(20), PktKind::Syn, 0, SimTime::ZERO),
                1 => Packet::control(flow, HostId(0), HostId(20), PktKind::Fin, 0, SimTime::ZERO),
                _ => Packet::data(
                    flow,
                    HostId(0),
                    HostId(20),
                    i as u32,
                    1460,
                    40,
                    SimTime::ZERO,
                ),
            }
        })
        .collect()
}

fn bench_decisions(c: &mut Criterion) {
    let ports = make_ports(15);
    let pkts = stream(4096);
    let mut group = c.benchmark_group("lb_decision");
    let schemes = Scheme::extended_set();
    for scheme in schemes {
        // Both dispatch paths per scheme: the boxed trait object the
        // simulator used through PR 4, and the enum match-dispatch that
        // replaced it on the hot path.
        group.bench_function(format!("dyn/{}", scheme.name()), |b| {
            b.iter_batched_ref(
                || (scheme.build(1), SimRng::new(3), SimTime::ZERO),
                |(lb, rng, now)| {
                    let mut acc = 0usize;
                    for pkt in &pkts {
                        *now += SimTime::from_nanos(500);
                        acc += lb.choose_uplink(pkt, PortView::new(&ports), *now, rng);
                    }
                    acc
                },
                BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("enum/{}", scheme.name()), |b| {
            b.iter_batched_ref(
                || {
                    (
                        scheme.build_dispatch(1, LbDispatch::Enum),
                        SimRng::new(3),
                        SimTime::ZERO,
                    )
                },
                |(lb, rng, now)| {
                    let mut acc = 0usize;
                    for pkt in &pkts {
                        *now += SimTime::from_nanos(500);
                        acc += lb.choose_uplink(pkt, PortView::new(&ports), *now, rng);
                    }
                    acc
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decisions);
criterion_main!(benches);
