//! Invariant oracles over a completed run.
//!
//! The heaviest oracle — packet conservation, per-port accounting, clock
//! monotonicity, and sender/receiver transport invariants — runs *inside*
//! the simulation ([`tlb_simnet::audit`], forced on by the scenario
//! builder) and panics mid-run on violation. The checks here are the
//! report-level complement: properties that need the scenario's ground
//! truth (the undegraded fabric, the flow specs, which scheme ran) and
//! the finished [`RunReport`].

use crate::scenario::BuiltScenario;
use tlb_model::fct_lower_bound;
use tlb_net::PktKind;
use tlb_simnet::{Hop, RunReport};

/// Relative slack on the FCT lower bound, absorbing f64 rounding in the
/// bound itself (the simulator's own timestamps are integer nanoseconds).
const FCT_REL_TOL: f64 = 1e-9;

/// Check every report-level oracle; `Err` lists all violations at once so
/// a shrunk failure prints the full picture.
pub fn check_report(built: &BuiltScenario, r: &RunReport) -> Result<(), String> {
    let mut violations: Vec<String> = Vec::new();

    // Oracle 1: the audit must have actually run (the in-run checks are
    // only as good as their wiring).
    if r.audit.is_none() {
        violations.push("audit was configured on but produced no report".into());
    }

    // Oracle 2: completion. The horizon (5 s) dwarfs the worst-case
    // serialized transfer time of the workload, so an incomplete flow
    // means a stall or routing black hole, not a tight deadline.
    if r.completed != r.total_flows {
        violations.push(format!(
            "only {}/{} flows completed by the horizon",
            r.completed, r.total_flows
        ));
    }
    if r.total_flows != built.flows.len() {
        violations.push(format!(
            "report covers {} flows but the scenario launched {}",
            r.total_flows,
            built.flows.len()
        ));
    }

    // Oracle 3: no completed flow beats ideal serialization + propagation
    // on the *undegraded* fabric (degradation only slows links, so the
    // pristine bound remains a valid lower bound).
    let capacity = built.pristine.host_link().bytes_per_sec as f64;
    for f in &built.flows {
        if let Some(fct) = r.fct.fct_of(f.id) {
            let prop = built.pristine.min_one_way_delay(f.src, f.dst).as_secs_f64();
            let bound = fct_lower_bound(f.size_bytes as f64, capacity, prop);
            if fct < bound * (1.0 - FCT_REL_TOL) {
                violations.push(format!(
                    "flow {} ({} B, {} -> {}) finished in {:.9}s, below the \
                     serialization+propagation bound {:.9}s",
                    f.id, f.size_bytes, f.src, f.dst, fct, bound
                ));
            }
        }
    }

    // Oracle 4: teardown ordering on traced flows. The sender emits its
    // FIN only once every segment is acked, and an ack implies the segment
    // was already delivered — so by the time the FIN reaches the
    // destination, every sequence number has been delivered there at
    // least once. Stragglers (multipath reordering, spurious retransmits)
    // may still trickle in after the FIN, but they must be duplicates: a
    // *first-time* delivery after FIN teardown is a real protocol bug.
    for &flow in &built.cfg.trace_flows {
        let dst = built.flows[flow.index()].dst.0;
        let fin_at = r.traces.iter().find_map(|e| match e.hop {
            Hop::Delivered { host } if e.flow == flow && host == dst && e.kind == PktKind::Fin => {
                Some(e.at)
            }
            _ => None,
        });
        if let Some(fin_at) = fin_at {
            let mut delivered_before = std::collections::BTreeSet::new();
            for e in &r.traces {
                if e.flow == flow
                    && e.kind == PktKind::Data
                    && matches!(e.hop, Hop::Delivered { host } if host == dst)
                {
                    if e.at <= fin_at {
                        delivered_before.insert(e.seq);
                    } else if !delivered_before.contains(&e.seq) {
                        violations.push(format!(
                            "flow {flow}: first delivery of data seq {} at {} is after \
                             FIN delivery at {fin_at} — teardown preceded the data",
                            e.seq, e.at
                        ));
                    }
                }
            }
        }
    }

    // Oracle 5: reroute discipline. TLB pinned at q_th = u64::MAX can
    // never observe a queue >= threshold, so it must report zero
    // long-flow reroutes; adaptive TLB must at least report the counter;
    // non-TLB schemes must not report one at all.
    match (built.scenario.is_pinned_tlb(), &r.tlb_long_reroutes) {
        (true, Some(0)) => {}
        (true, other) => violations.push(format!(
            "pinned TLB (q_th = MAX) must report Some(0) long reroutes, got {other:?}"
        )),
        (false, Some(_)) if built.scenario.scheme_idx == 4 => {}
        (false, None) if built.scenario.scheme_idx < 4 => {}
        (false, other) => violations.push(format!(
            "scheme {} reported unexpected long-reroute counter {other:?}",
            r.scheme
        )),
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "scenario {:?} violated {} oracle(s):\n  - {}",
            built.scenario,
            violations.len(),
            violations.join("\n  - ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    fn run(raw: crate::RawScenario) -> (BuiltScenario, RunReport) {
        let b = Scenario::from_raw(raw).build();
        let r = tlb_simnet::run_one(b.cfg.clone(), b.flows.clone());
        (b, r)
    }

    #[test]
    fn clean_run_passes_all_oracles() {
        let (b, r) = run(((2, 3, 2, 10), (4, 6, 1, 2), (42, true, 50, 10, false)));
        check_report(&b, &r).unwrap();
    }

    #[test]
    fn fct_oracle_catches_a_faster_than_light_flow() {
        let (b, r) = run(((2, 2, 2, 10), (0, 3, 0, 0), (5, false, 50, 0, false)));
        check_report(&b, &r).unwrap();
        // Forge an impossible bound by claiming the fabric is ~10000x
        // slower than the one that actually ran: the serialization term
        // balloons past every real FCT, so the oracle must fire.
        let mut forged = b.clone();
        forged.pristine = tlb_net::LeafSpineBuilder::new(2, 2, 2)
            .link_gbps(0.0001)
            .target_rtt(tlb_engine::SimTime::from_micros(100))
            .build();
        let err = check_report(&forged, &r).unwrap_err();
        assert!(
            err.contains("below the serialization+propagation bound"),
            "{err}"
        );
    }

    #[test]
    fn completion_oracle_catches_missing_flows() {
        let (b, mut r) = run(((2, 2, 2, 10), (1, 4, 0, 0), (8, false, 50, 0, false)));
        r.completed -= 1;
        let err = check_report(&b, &r).unwrap_err();
        assert!(err.contains("flows completed by the horizon"), "{err}");
    }

    #[test]
    fn reroute_oracle_catches_a_pinned_tlb_that_reroutes() {
        let (b, mut r) = run(((2, 2, 2, 10), (5, 4, 2, 0), (9, false, 50, 0, false)));
        assert_eq!(r.tlb_long_reroutes, Some(0), "precondition");
        r.tlb_long_reroutes = Some(3);
        let err = check_report(&b, &r).unwrap_err();
        assert!(err.contains("pinned TLB"), "{err}");
    }

    #[test]
    fn reroute_oracle_catches_a_non_tlb_scheme_reporting_reroutes() {
        let (b, mut r) = run(((2, 2, 2, 10), (0, 4, 0, 0), (9, false, 50, 0, false)));
        assert_eq!(r.tlb_long_reroutes, None, "precondition");
        r.tlb_long_reroutes = Some(1);
        let err = check_report(&b, &r).unwrap_err();
        assert!(err.contains("unexpected long-reroute counter"), "{err}");
    }

    #[test]
    fn audit_oracle_catches_a_silently_skipped_audit() {
        let (b, mut r) = run(((2, 2, 2, 10), (2, 3, 0, 0), (4, false, 50, 0, false)));
        r.audit = None;
        let err = check_report(&b, &r).unwrap_err();
        assert!(err.contains("no report"), "{err}");
    }
}
