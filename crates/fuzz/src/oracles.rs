//! Invariant oracles over a completed run.
//!
//! The heaviest oracle — packet conservation, per-port accounting, clock
//! monotonicity, and sender/receiver transport invariants — runs *inside*
//! the simulation ([`tlb_simnet::audit`], forced on by the scenario
//! builder) and panics mid-run on violation. The checks here are the
//! report-level complement: properties that need the scenario's ground
//! truth (the undegraded fabric, the flow specs, which scheme ran) and
//! the finished [`RunReport`].

use crate::scenario::BuiltScenario;
use tlb_model::fct_lower_bound;
use tlb_net::PktKind;
use tlb_simnet::{Hop, RunReport};

/// Relative slack on the FCT lower bound, absorbing f64 rounding in the
/// bound itself (the simulator's own timestamps are integer nanoseconds).
const FCT_REL_TOL: f64 = 1e-9;

/// Which oracles to run. The default (`for_packet`) enables everything;
/// hybrid-fidelity runs must skip the FCT lower bound — a migrated flow's
/// packet prefix and fluid tail overlap in time, so its FCT can
/// legitimately undercut the sequential serialization bound.
#[derive(Clone, Copy, Debug)]
pub struct OracleSet {
    /// Check completed FCTs against the serialization+propagation bound.
    pub fct_lower_bound: bool,
}

impl OracleSet {
    /// Every oracle, the packet-fidelity catalog.
    pub fn for_packet() -> Self {
        OracleSet {
            fct_lower_bound: true,
        }
    }

    /// The hybrid-fidelity catalog: everything except the FCT bound.
    pub fn for_hybrid() -> Self {
        OracleSet {
            fct_lower_bound: false,
        }
    }
}

/// Check every report-level oracle; `Err` lists all violations at once so
/// a shrunk failure prints the full picture.
pub fn check_report(built: &BuiltScenario, r: &RunReport) -> Result<(), String> {
    check_report_with(built, r, OracleSet::for_packet())
}

/// [`check_report`] with an explicit oracle selection.
pub fn check_report_with(
    built: &BuiltScenario,
    r: &RunReport,
    oracles: OracleSet,
) -> Result<(), String> {
    let mut violations: Vec<String> = Vec::new();

    // Oracle 1: the audit must have actually run (the in-run checks are
    // only as good as their wiring).
    if r.audit.is_none() {
        violations.push("audit was configured on but produced no report".into());
    }

    // Oracle 2: completion. The horizon (5 s) dwarfs the worst-case
    // serialized transfer time of the workload, so an incomplete flow
    // means a stall or routing black hole, not a tight deadline.
    if r.completed != r.total_flows {
        violations.push(format!(
            "only {}/{} flows completed by the horizon",
            r.completed, r.total_flows
        ));
    }
    if r.total_flows != built.flows.len() {
        violations.push(format!(
            "report covers {} flows but the scenario launched {}",
            r.total_flows,
            built.flows.len()
        ));
    }

    // Oracle 3: no completed flow beats ideal serialization + propagation
    // on the *best* fabric state the run's schedule ever reaches
    // (`BuiltScenario::bound`). The pristine fabric is NOT sound here: a
    // mid-run improvement (link repair with a shorter propagation delay)
    // legitimately lets late flows beat the pristine bound.
    let capacity = built.bound.host_link().bytes_per_sec as f64;
    for f in built.flows.iter().filter(|_| oracles.fct_lower_bound) {
        if let Some(fct) = r.fct.fct_of(f.id) {
            let prop = built.bound.min_one_way_delay(f.src, f.dst).as_secs_f64();
            let bound = fct_lower_bound(f.size_bytes as f64, capacity, prop);
            if fct < bound * (1.0 - FCT_REL_TOL) {
                violations.push(format!(
                    "flow {} ({} B, {} -> {}) finished in {:.9}s, below the \
                     serialization+propagation bound {:.9}s",
                    f.id, f.size_bytes, f.src, f.dst, fct, bound
                ));
            }
        }
    }

    // Oracle 4: teardown ordering on traced flows. The sender emits its
    // FIN only once every segment is acked, and an ack implies the segment
    // was already delivered — so by the time the FIN reaches the
    // destination, every sequence number has been delivered there at
    // least once. Stragglers (multipath reordering, spurious retransmits)
    // may still trickle in after the FIN, but they must be duplicates: a
    // *first-time* delivery after FIN teardown is a real protocol bug.
    for &flow in &built.cfg.trace_flows {
        let dst = built.flows[flow.index()].dst.0;
        let fin_at = r.traces.iter().find_map(|e| match e.hop {
            Hop::Delivered { host } if e.flow == flow && host == dst && e.kind == PktKind::Fin => {
                Some(e.at)
            }
            _ => None,
        });
        if let Some(fin_at) = fin_at {
            let mut delivered_before = std::collections::BTreeSet::new();
            for e in &r.traces {
                if e.flow == flow
                    && e.kind == PktKind::Data
                    && matches!(e.hop, Hop::Delivered { host } if host == dst)
                {
                    if e.at <= fin_at {
                        delivered_before.insert(e.seq);
                    } else if !delivered_before.contains(&e.seq) {
                        violations.push(format!(
                            "flow {flow}: first delivery of data seq {} at {} is after \
                             FIN delivery at {fin_at} — teardown preceded the data",
                            e.seq, e.at
                        ));
                    }
                }
            }
        }
    }

    // Oracle 5: reroute discipline. TLB pinned at q_th = u64::MAX can
    // never observe a queue >= threshold, so it must report zero
    // long-flow reroutes; adaptive TLB must at least report the counter;
    // non-TLB schemes must not report one at all.
    match (built.scenario.is_pinned_tlb(), &r.tlb_long_reroutes) {
        (true, Some(0)) => {}
        (true, other) => violations.push(format!(
            "pinned TLB (q_th = MAX) must report Some(0) long reroutes, got {other:?}"
        )),
        (false, Some(_)) if built.scenario.scheme_idx == 4 => {}
        (false, None) if built.scenario.scheme_idx != 4 => {}
        (false, other) => violations.push(format!(
            "scheme {} reported unexpected long-reroute counter {other:?}",
            r.scheme
        )),
    }

    // Oracle 6: forced-reroute discipline. Forced moves exist only when a
    // link actually went down; a run with no failure schedule must report
    // zero (schemes that track the counter) or nothing at all.
    if built.cfg.failure_events.is_empty() {
        match r.forced_reroutes {
            None | Some(0) => {}
            Some(n) => violations.push(format!(
                "scheme {} reported {n} failure-forced reroutes in a run                  with no failure schedule",
                r.scheme
            )),
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "scenario {:?} violated {} oracle(s):\n  - {}",
            built.scenario,
            violations.len(),
            violations.join("\n  - ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    fn run(raw: crate::RawScenario) -> (BuiltScenario, RunReport) {
        let b = Scenario::from_raw(raw).build();
        let r = tlb_simnet::run_one(b.cfg.clone(), b.flows.clone());
        (b, r)
    }

    #[test]
    fn clean_run_passes_all_oracles() {
        let (b, r) = run((
            (2, 3, 2, 10),
            (4, 6, 1, 2),
            (42, true, 50, 10, false),
            (0, false, 0, 0, false),
        ));
        check_report(&b, &r).unwrap();
    }

    #[test]
    fn fct_oracle_catches_a_faster_than_light_flow() {
        let (b, r) = run((
            (2, 2, 2, 10),
            (0, 3, 0, 0),
            (5, false, 50, 0, false),
            (0, false, 0, 0, false),
        ));
        check_report(&b, &r).unwrap();
        // Forge an impossible bound by claiming the fabric is ~10000x
        // slower than the one that actually ran: the serialization term
        // balloons past every real FCT, so the oracle must fire.
        let mut forged = b.clone();
        forged.bound = tlb_net::LeafSpineBuilder::new(2, 2, 2)
            .link_gbps(0.0001)
            .target_rtt(tlb_engine::SimTime::from_micros(100))
            .build()
            .into();
        let err = check_report(&forged, &r).unwrap_err();
        assert!(
            err.contains("below the serialization+propagation bound"),
            "{err}"
        );
    }

    #[test]
    fn fct_oracle_stays_sound_under_mid_run_improvement() {
        use tlb_engine::SimTime;
        use tlb_net::{FlowId, HostId, LeafId, SpineId};
        use tlb_simnet::LinkEvent;
        use tlb_workload::FlowSpec;

        // Hand-built scenario with slow uplinks (5 ms one-way) that all
        // get repaired to 10 µs at t = 1 ms; the single flow starts after
        // the repair and finishes far sooner than the pristine fabric
        // could ever deliver it.
        let raw = (
            (2, 2, 2, 10),
            (0, 1, 0, 0),
            (7, false, 50, 0, false),
            (0, false, 0, 0, false),
        );
        let mut b = crate::Scenario::from_raw(raw).build();
        let slow = SimTime::from_millis(5);
        for l in 0..2 {
            for s in 0..2 {
                let mut p = b.pristine.uplink_props(l, s);
                p.prop_delay = slow;
                b.pristine.set_uplink(l, s, p);
                b.cfg.link_events.push(LinkEvent {
                    at: SimTime::from_millis(1),
                    leaf: LeafId(l as u32),
                    spine: SpineId(s as u32),
                    bw_factor: 1.0,
                    new_prop_delay: Some(SimTime::from_micros(10)),
                    extra_delay: SimTime::ZERO,
                });
            }
        }
        b.cfg.topo = b.pristine.clone();
        b.flows = vec![FlowSpec {
            id: FlowId(0),
            src: HostId(0),
            dst: HostId(2), // other leaf: crosses the repaired uplinks
            size_bytes: 30_000,
            start: SimTime::from_millis(3),
            deadline: None,
        }];
        b.cfg.trace_flows = vec![FlowId(0)];
        b.bound = crate::scenario::bound_fabric(&b.pristine, &b.cfg.link_events);

        let r = tlb_simnet::run_one(b.cfg.clone(), b.flows.clone());
        // With the schedule-aware bound the run is clean...
        check_report(&b, &r).unwrap();
        // ...but the old pristine-fabric bound (the pre-fix behavior)
        // flags the flow as faster-than-light: the repair shaved ~10 ms
        // off the path, which the pristine fabric says is impossible.
        let mut old_behavior = b.clone();
        old_behavior.bound = old_behavior.pristine.clone();
        let err = check_report(&old_behavior, &r).unwrap_err();
        assert!(
            err.contains("below the serialization+propagation bound"),
            "{err}"
        );
    }

    #[test]
    fn forced_reroute_oracle_rejects_forced_moves_without_failures() {
        let (b, mut r) = run((
            (2, 2, 2, 10),
            (6, 4, 2, 0),
            (9, false, 50, 0, false),
            (0, false, 0, 0, false),
        ));
        assert!(b.cfg.failure_events.is_empty(), "precondition");
        r.forced_reroutes = Some(2);
        let err = check_report(&b, &r).unwrap_err();
        assert!(err.contains("no failure schedule"), "{err}");
    }

    #[test]
    fn completion_oracle_catches_missing_flows() {
        let (b, mut r) = run((
            (2, 2, 2, 10),
            (1, 4, 0, 0),
            (8, false, 50, 0, false),
            (0, false, 0, 0, false),
        ));
        r.completed -= 1;
        let err = check_report(&b, &r).unwrap_err();
        assert!(err.contains("flows completed by the horizon"), "{err}");
    }

    #[test]
    fn reroute_oracle_catches_a_pinned_tlb_that_reroutes() {
        let (b, mut r) = run((
            (2, 2, 2, 10),
            (5, 4, 2, 0),
            (9, false, 50, 0, false),
            (0, false, 0, 0, false),
        ));
        assert_eq!(r.tlb_long_reroutes, Some(0), "precondition");
        r.tlb_long_reroutes = Some(3);
        let err = check_report(&b, &r).unwrap_err();
        assert!(err.contains("pinned TLB"), "{err}");
    }

    #[test]
    fn reroute_oracle_catches_a_non_tlb_scheme_reporting_reroutes() {
        let (b, mut r) = run((
            (2, 2, 2, 10),
            (0, 4, 0, 0),
            (9, false, 50, 0, false),
            (0, false, 0, 0, false),
        ));
        assert_eq!(r.tlb_long_reroutes, None, "precondition");
        r.tlb_long_reroutes = Some(1);
        let err = check_report(&b, &r).unwrap_err();
        assert!(err.contains("unexpected long-reroute counter"), "{err}");
    }

    #[test]
    fn audit_oracle_catches_a_silently_skipped_audit() {
        let (b, mut r) = run((
            (2, 2, 2, 10),
            (2, 3, 0, 0),
            (4, false, 50, 0, false),
            (0, false, 0, 0, false),
        ));
        r.audit = None;
        let err = check_report(&b, &r).unwrap_err();
        assert!(err.contains("no report"), "{err}");
    }
}
