//! # tlb-fuzz — scenario fuzzing with invariant oracles
//!
//! A deterministic scenario fuzzer for the whole simulator stack:
//! random-but-valid leaf-spine topologies (switch/host counts, link
//! speeds, asymmetric degradation — static or mid-run), random workloads
//! (Poisson-spaced short/long mixes with sizes straddling the 100 KB
//! classification boundary, plus incast bursts), and random
//! load-balancer configs (TLB adaptive, TLB pinned, ECMP, RPS, Presto,
//! LetFlow). Every sampled scenario runs through `tlb-simnet` with the
//! packet-conservation audit forced on and is then checked against the
//! oracle catalog in [`oracles`]:
//!
//! * **Conservation** — [`tlb_simnet::SimConfig::audit`] panics inside
//!   the run on any lifecycle imbalance, port mismatch, clock regression,
//!   or sender/receiver transport-invariant violation.
//! * **FCT lower bound** — no completed flow finishes faster than its
//!   ideal serialization + propagation time
//!   ([`tlb_model::fct_lower_bound`] over the *undegraded* fabric).
//! * **Teardown ordering** — traced flows never deliver *first-time* data
//!   to the receiver after the FIN's delivery (the FIN follows full
//!   acknowledgment, so anything later must be a duplicate straggler).
//! * **Reroute discipline** — a TLB pinned at `q_th = ∞` reports zero
//!   long-flow reroutes; non-TLB schemes report none at all.
//! * **Completion** — with a generous horizon every flow completes
//!   (catches stalls and routing black holes).
//!
//! [`conformance`] adds a unit-level differential oracle: a reference
//! re-derivation of TLB's control law (threshold from the public
//! Eq. 9 API, flow counting, long-flow stickiness) driven in lock-step
//! with the real [`tlb_core::Tlb`]. Its mutation self-check (feature
//! `fault-inject`) arms a seeded bug — one skipped threshold recompute —
//! and asserts the oracle catches it *and* that the failure shrinks to a
//! replayable `fuzz/regressions/` entry.
//!
//! Reproducibility: scenarios are pure functions of their sampled
//! parameters; the proptest driver honors `TLB_PROPTEST_SEED` /
//! `TLB_PROPTEST_CASES` and replays `fuzz/regressions/*.txt` first.

pub mod conformance;
pub mod oracles;
pub mod scenario;

pub use conformance::{expected_q_th, run_conformance};
pub use oracles::{check_report, check_report_with, OracleSet};
pub use scenario::{
    bound_fabric, failure_scenario_strategy, scenario_strategy, BuiltScenario, RawScenario,
    Scenario,
};

/// Build, run, and oracle-check one scenario; `Err` carries every
/// violated oracle. This is the closure body of both the crate's smoke
/// property and the top-level `tests/fuzz_scenarios.rs` entry point.
pub fn run_scenario_checked(raw: RawScenario) -> Result<tlb_simnet::RunReport, String> {
    let built = Scenario::from_raw(raw).build();
    let report = tlb_simnet::run_one_ref(&built.cfg, &built.flows);
    check_report(&built, &report)?;
    Ok(report)
}

/// FCT agreement band for the hybrid differential oracle. Deliberately
/// generous: fuzzed scenarios hit extreme corners (near-empty fabrics,
/// heavy degradation) where the fluid approximation strays furthest, and
/// this oracle exists to catch *wrong* hybrid runs (stalls, double
/// counting, broken migration), not modeling drift. The paper-figure
/// operating points get tight bands in `tests/fidelity.rs`.
const HYBRID_FCT_BAND: (f64, f64) = (0.05, 20.0);

/// The hybrid differential: run one scenario at packet fidelity, then
/// again at hybrid fidelity, oracle-check both (hybrid skips the FCT
/// lower bound — a migrated flow's packet prefix and fluid tail overlap
/// in time), and compare the runs. Exact across fidelities: completion
/// counts and a pinned TLB's zero voluntary reroutes. Banded: per-class
/// mean FCT within [`HYBRID_FCT_BAND`].
pub fn run_scenario_checked_hybrid(raw: RawScenario) -> Result<(), String> {
    let built = Scenario::from_raw(raw).build();
    let packet = tlb_simnet::run_one_ref(&built.cfg, &built.flows);
    check_report(&built, &packet)?;

    let mut cfg = built.cfg.clone();
    cfg.fidelity = tlb_simnet::FidelityKind::Hybrid;
    let hybrid = tlb_simnet::run_one(cfg, built.flows.clone());
    check_report_with(&built, &hybrid, OracleSet::for_hybrid())?;

    let mut violations: Vec<String> = Vec::new();
    if hybrid.completed != packet.completed {
        violations.push(format!(
            "completion diverged: packet {}/{} vs hybrid {}/{}",
            packet.completed, packet.total_flows, hybrid.completed, hybrid.total_flows
        ));
    }
    if packet.fluid_migrations != 0 {
        violations.push(format!(
            "packet fidelity used the fluid tier ({} migrations)",
            packet.fluid_migrations
        ));
    }
    if built.scenario.is_pinned_tlb() && hybrid.tlb_long_reroutes != packet.tlb_long_reroutes {
        violations.push(format!(
            "pinned-TLB reroute counters diverged: packet {:?} vs hybrid {:?}",
            packet.tlb_long_reroutes, hybrid.tlb_long_reroutes
        ));
    }
    let (lo, hi) = HYBRID_FCT_BAND;
    for (class, p, h) in [
        ("short", packet.fct_short.afct, hybrid.fct_short.afct),
        ("long", packet.fct_long.afct, hybrid.fct_long.afct),
    ] {
        if p > 0.0 && h > 0.0 {
            let ratio = h / p;
            if !(lo..=hi).contains(&ratio) {
                violations.push(format!(
                    "{class} mean FCT ratio hybrid/packet = {ratio:.3} outside [{lo}, {hi}] \
                     (packet {p:.6}, hybrid {h:.6})"
                ));
            }
        }
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "hybrid differential on scenario {:?} violated {} oracle(s):\n  - {}",
            built.scenario,
            violations.len(),
            violations.join("\n  - ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn scenarios_are_deterministic_functions_of_raw_params() {
        let raw = (
            (2, 3, 2, 10),
            (4, 6, 1, 2),
            (42, true, 50, 10, false),
            (0, false, 0, 0, false),
        );
        let a = Scenario::from_raw(raw).build();
        let b = Scenario::from_raw(raw).build();
        assert_eq!(a.flows.len(), b.flows.len());
        for (x, y) in a.flows.iter().zip(&b.flows) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.src, y.src);
            assert_eq!(x.dst, y.dst);
            assert_eq!(x.size_bytes, y.size_bytes);
            assert_eq!(x.start, y.start);
        }
        assert_eq!(a.cfg.scheme.name(), b.cfg.scheme.name());
        assert_eq!(a.cfg.seed, b.cfg.seed);
    }

    #[test]
    fn built_scenarios_validate_and_force_the_audit() {
        for raw in [
            (
                (2, 2, 2, 5),
                (0, 1, 0, 0),
                (0, false, 99, 50, true),
                (0, false, 0, 0, false),
            ),
            (
                (4, 6, 4, 20),
                (5, 24, 3, 6),
                (7, true, 10, 0, true),
                (1, true, 400, 700, true),
            ),
            (
                (3, 4, 3, 12),
                (3, 12, 2, 3),
                (9, true, 40, 25, false),
                (0, true, 900, 0, false),
            ),
        ] {
            let b = Scenario::from_raw(raw).build();
            b.cfg
                .validate()
                .expect("scenario produced an invalid config");
            assert!(b.cfg.audit, "fuzz scenarios must force the audit on");
            assert!(!b.flows.is_empty());
            for (i, f) in b.flows.iter().enumerate() {
                assert_eq!(f.id.index(), i, "dense ids");
                assert_ne!(f.src, f.dst);
                assert!(f.size_bytes > 0);
                if i > 0 {
                    assert!(b.flows[i - 1].start <= f.start, "sorted starts");
                }
            }
        }
    }

    #[test]
    fn scheme_space_covers_the_paper_baselines_and_both_tlbs() {
        let names: Vec<&str> = (0..7u8)
            .map(|i| {
                let raw = (
                    (2, 2, 2, 10),
                    (i, 2, 1, 0),
                    (1, false, 50, 0, false),
                    (0, false, 0, 0, false),
                );
                Scenario::from_raw(raw).scheme().name()
            })
            .collect();
        assert_eq!(
            names,
            vec!["ECMP", "RPS", "Presto", "LetFlow", "TLB", "TLB", "DiffFlow"]
        );
        // Index 5 is the pinned variant the reroute oracle keys on; the
        // DiffFlow slot after it is not.
        assert!(Scenario::from_raw((
            (2, 2, 2, 10),
            (5, 2, 1, 0),
            (1, false, 50, 0, false),
            (0, false, 0, 0, false)
        ))
        .is_pinned_tlb());
        assert!(!Scenario::from_raw((
            (2, 2, 2, 10),
            (6, 2, 1, 0),
            (1, false, 50, 0, false),
            (0, false, 0, 0, false)
        ))
        .is_pinned_tlb());
    }

    proptest! {
        /// Smoke: a handful of full scenario runs per test invocation (the
        /// 256-case pinned-seed sweep lives in `tests/fuzz_scenarios.rs`).
        #[test]
        fn prop_scenario_smoke(raw in scenario_strategy()) {
            if let Err(v) = run_scenario_checked(raw) {
                return Err(proptest::TestCaseError::fail(v));
            }
        }

        /// Every case carries an active failure schedule (Down, often
        /// followed by the repair): reconvergence, admission-time drops,
        /// and forced reroutes all run under the conservation audit and
        /// the full oracle catalog.
        #[test]
        fn prop_failure_scenarios(raw in failure_scenario_strategy()) {
            if let Err(v) = run_scenario_checked(raw) {
                return Err(proptest::TestCaseError::fail(v));
            }
        }
    }
}
