//! Differential conformance oracle for the TLB control law.
//!
//! Drives a real [`Tlb`] instance packet-by-packet against an independent
//! reference mirror of the paper's rules (§3/§5): SYN/FIN flow counting,
//! 100 KB reclassification, short-flows-per-packet / long-flows-sticky
//! forwarding, idle purging, and the Eq. 9 threshold recompute every
//! update interval. The mirror never peeks at `Tlb` internals — it checks
//! observable outputs only:
//!
//! * every chosen uplink obeys the forwarding rule for the flow's class
//!   (shortest-queue membership for short/control packets; stickiness
//!   below `q_th`, reroute-to-shortest at or above it);
//! * `Tlb::counts()` tracks the reference `(m_S, m_L)` after every op;
//! * `Tlb::long_reroutes()` tracks the reference reroute count;
//! * after every granularity update, `Tlb::q_th_bytes()` equals
//!   [`expected_q_th`] recomputed from first principles.
//!
//! The `fault-inject` mutation self-check arms a seeded bug (one skipped
//! threshold recompute) and asserts this oracle catches it *and* that the
//! failure shrinks into a replayable regression file — the end-to-end
//! proof that the fuzzing pipeline has teeth.

use tlb_core::{ThresholdMode, Tlb, TlbConfig};
use tlb_engine::{SimRng, SimTime};
use tlb_model::{q_th_min, ModelParams};
use tlb_net::{FlowId, HostId, LinkProps, Packet, PktKind};
use tlb_switch::{LoadBalancer, OutPort, PortView, QueueCfg};

/// One scripted op: `(kind % 8, flow_id, queue_shape_selector)`.
/// Kinds: 0 = SYN, 6 = FIN, 7 = granularity tick, anything else = DATA
/// (51 kB payload). The skew — 5/8 data, 1/8 tick — keeps enough bytes
/// flowing between granularity updates that long flows exist when the
/// threshold recomputes, which both the stickiness and the Eq. 9 checks
/// need to bite.
pub type ConformanceOp = (u8, u32, u16);

/// Payload per DATA op — two of them push a flow past the 100 KB boundary,
/// so random scripts exercise both classes and the mid-life crossing.
const PAYLOAD: u32 = 51_000;

/// Re-derive the Eq. 9 threshold the way [`Tlb::on_tick`] must: from the
/// post-purge flow counts, the configuration, and the port view. Public so
/// tests can assert against an independently computed value.
pub fn expected_q_th(tlb: &Tlb, n_ports: usize, mean_capacity: f64) -> u64 {
    match tlb.config().threshold_mode {
        ThresholdMode::Fixed(q) => q,
        ThresholdMode::Adaptive => {
            let (m_short, m_long) = tlb.counts();
            if m_long == 0 {
                return 0;
            }
            let cfg = tlb.config();
            let params = ModelParams {
                n_paths: n_ports as f64,
                m_short: m_short as f64,
                m_long: m_long as f64,
                capacity: mean_capacity,
                rtt: cfg.rtt.as_secs_f64(),
                interval: cfg.update_interval.as_secs_f64(),
                w_long: cfg.w_long_bytes,
                mean_short: tlb.mean_short_estimate().max(1.0),
                mss: cfg.mss as f64,
                deadline: cfg.deadline().as_secs_f64(),
            };
            q_th_min(&params).as_bytes_saturating()
        }
    }
}

/// Reference per-flow record (mirror of the paper's flow-table entry).
#[derive(Clone, Copy)]
struct MirrorFlow {
    bytes: u64,
    long: bool,
    counted: bool,
    port: usize,
    last_seen: SimTime,
}

/// Build `n` one-Gbit ports holding `lens[p]` queued 1500-byte packets.
fn ports_with_lens(lens: &[usize]) -> Vec<OutPort> {
    let link = LinkProps::gbps(1.0, SimTime::ZERO);
    let cfg = QueueCfg {
        capacity_pkts: 4096,
        ecn_threshold_pkts: None,
    };
    lens.iter()
        .map(|&l| {
            let mut p = OutPort::new(link, cfg);
            for s in 0..l {
                p.enqueue(
                    Packet::data(
                        FlowId(u32::MAX),
                        HostId(0),
                        HostId(1),
                        s as u32,
                        1460,
                        40,
                        SimTime::ZERO,
                    ),
                    SimTime::ZERO,
                );
            }
            p
        })
        .collect()
}

/// Run one scripted conformance session. `fault` arms
/// [`Tlb::fault_skip_recompute_at`] (requires the `fault-inject` feature;
/// passing `Some` without it is a caller bug). Returns the first observed
/// divergence between the real TLB and the reference mirror.
pub fn run_conformance(
    n_ports: usize,
    ops: &[ConformanceOp],
    fault: Option<u64>,
) -> Result<(), String> {
    assert!(n_ports >= 2, "need at least two uplinks");
    let cfg = TlbConfig::paper_default();
    let mut tlb = Tlb::new(cfg);
    #[cfg(feature = "fault-inject")]
    if let Some(idx) = fault {
        tlb.fault_skip_recompute_at(idx);
    }
    #[cfg(not(feature = "fault-inject"))]
    assert!(
        fault.is_none(),
        "fault injection requires the fault-inject feature"
    );

    let mut rng = SimRng::new(7);
    let mut now = SimTime::ZERO;
    let mut mirror: std::collections::BTreeMap<u32, MirrorFlow> = std::collections::BTreeMap::new();
    let (mut m_short, mut m_long) = (0usize, 0usize);
    let mut reroutes = 0u64;

    for (i, &(kind, flow, qsel)) in ops.iter().enumerate() {
        // Deterministic pseudo-random queue shape for this op.
        let lens: Vec<usize> = (0..n_ports)
            .map(|p| {
                ((qsel as u64)
                    .wrapping_mul(2_654_435_761)
                    .wrapping_add(p as u64 * 7_919)
                    .wrapping_add(i as u64 * 104_729)
                    % 40) as usize
            })
            .collect();
        let qlen = |p: usize| lens[p] as u64 * 1500;
        let min_bytes = (0..n_ports).map(qlen).min().unwrap();
        let ports = ports_with_lens(&lens);

        if kind % 8 == 7 {
            // Granularity tick: purge, recount, recompute.
            now += cfg.update_interval;
            tlb.on_tick(PortView::new(&ports), now);
            let cutoff = now.saturating_sub(cfg.idle_timeout);
            mirror.retain(|_, f| f.last_seen >= cutoff);
            m_short = mirror.values().filter(|f| f.counted && !f.long).count();
            m_long = mirror.values().filter(|f| f.counted && f.long).count();
            if tlb.counts() != (m_short, m_long) {
                return Err(format!(
                    "op {i}: counts diverged after tick: tlb {:?} vs reference {:?}",
                    tlb.counts(),
                    (m_short, m_long)
                ));
            }
            let mean_capacity = PortView::new(&ports).mean_capacity();
            let expect = expected_q_th(&tlb, n_ports, mean_capacity);
            if tlb.q_th_bytes() != expect {
                return Err(format!(
                    "op {i}: q_th diverged after update {}: tlb {} vs Eq. 9 reference {} \
                     (m_S={m_short}, m_L={m_long})",
                    tlb.updates() - 1,
                    tlb.q_th_bytes(),
                    expect
                ));
            }
            continue;
        }

        now += SimTime::from_micros(5);
        let q_th_before = tlb.q_th_bytes();
        let pkt = match kind % 8 {
            0 => Packet::control(FlowId(flow), HostId(0), HostId(9), PktKind::Syn, 0, now),
            6 => Packet::control(FlowId(flow), HostId(0), HostId(9), PktKind::Fin, 0, now),
            _ => Packet::data(
                FlowId(flow),
                HostId(0),
                HostId(9),
                i as u32,
                PAYLOAD,
                40,
                now,
            ),
        };
        let chosen = tlb.choose_uplink(&pkt, PortView::new(&ports), now, &mut rng);
        if chosen >= n_ports {
            return Err(format!("op {i}: chose out-of-range port {chosen}"));
        }

        match kind % 8 {
            0 => {
                // SYN: counted insert (or upgrade), forwarded to a shortest
                // queue, flow re-pinned there.
                if qlen(chosen) != min_bytes {
                    return Err(format!(
                        "op {i}: SYN routed to port {chosen} ({} B) but shortest is {min_bytes} B",
                        qlen(chosen)
                    ));
                }
                let f = mirror.entry(flow).or_insert(MirrorFlow {
                    bytes: 0,
                    long: false,
                    counted: false,
                    port: chosen,
                    last_seen: now,
                });
                if !f.counted {
                    f.counted = true;
                    if f.long {
                        m_long += 1;
                    } else {
                        m_short += 1;
                    }
                }
                f.port = chosen;
                f.last_seen = now;
            }
            1..=5 => {
                let f = mirror.entry(flow).or_insert(MirrorFlow {
                    bytes: 0,
                    long: false,
                    counted: false,
                    port: chosen,
                    last_seen: now,
                });
                let relearned = if !f.counted && f.bytes == 0 && !f.long {
                    // Fresh (or purged-and-resumed) flow: relearned counted.
                    f.counted = true;
                    true
                } else {
                    false
                };
                f.last_seen = now;
                let cur = f.port;
                f.bytes += PAYLOAD as u64;
                let became_long = !f.long && f.bytes > tlb.config().short_threshold_bytes;
                if became_long {
                    f.long = true;
                }
                if f.long {
                    // Long rule: sticky below q_th; at/above it, move to a
                    // shortest queue (a same-port "move" is not a reroute).
                    if qlen(cur) >= q_th_before {
                        if qlen(chosen) != min_bytes {
                            return Err(format!(
                                "op {i}: long flow {flow} rerouted to non-shortest port {chosen}"
                            ));
                        }
                        if chosen != cur {
                            reroutes += 1;
                        }
                        f.port = chosen;
                    } else if chosen != cur {
                        return Err(format!(
                            "op {i}: long flow {flow} moved {cur} -> {chosen} while its queue \
                             ({} B) is below q_th ({q_th_before} B)",
                            qlen(cur)
                        ));
                    }
                } else {
                    // Short rule: every packet to a shortest queue.
                    if qlen(chosen) != min_bytes {
                        return Err(format!(
                            "op {i}: short flow {flow} routed to port {chosen} ({} B) but \
                             shortest is {min_bytes} B",
                            qlen(chosen)
                        ));
                    }
                    f.port = chosen;
                }
                if relearned {
                    if f.long {
                        m_long += 1;
                    } else {
                        m_short += 1;
                    }
                } else if became_long && f.counted {
                    m_short = m_short.saturating_sub(1);
                    m_long += 1;
                }
            }
            _ => {
                // FIN: decrement and forget; the FIN itself takes a shortest
                // queue.
                if qlen(chosen) != min_bytes {
                    return Err(format!(
                        "op {i}: FIN routed to port {chosen} ({} B) but shortest is {min_bytes} B",
                        qlen(chosen)
                    ));
                }
                if let Some(f) = mirror.remove(&flow) {
                    if f.counted {
                        if f.long {
                            m_long = m_long.saturating_sub(1);
                        } else {
                            m_short = m_short.saturating_sub(1);
                        }
                    }
                }
            }
        }

        if tlb.counts() != (m_short, m_long) {
            return Err(format!(
                "op {i}: counts diverged: tlb {:?} vs reference {:?}",
                tlb.counts(),
                (m_short, m_long)
            ));
        }
        if tlb.long_reroutes() != reroutes {
            return Err(format!(
                "op {i}: reroute count diverged: tlb {} vs reference {reroutes}",
                tlb.long_reroutes()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Script ops as a proptest strategy: enough ticks and data packets
    /// that flows cross the boundary and thresholds move.
    fn ops_strategy() -> impl Strategy<Value = (usize, Vec<ConformanceOp>)> {
        (
            2usize..6,
            proptest::collection::vec((0u8..8, 0u32..4, 0u16..64), 1..120),
        )
    }

    proptest! {
        /// The real TLB must match the reference mirror on every script.
        #[test]
        fn prop_tlb_conforms_to_reference((n_ports, ops) in ops_strategy()) {
            if let Err(e) = run_conformance(n_ports, &ops, None) {
                return Err(proptest::TestCaseError::fail(e));
            }
        }
    }

    #[test]
    fn handcrafted_script_covers_all_rules() {
        // SYN, cross the boundary (2 x 51 kB), tick, reroute chances, FIN.
        let ops: Vec<ConformanceOp> = vec![
            (0, 1, 10),
            (1, 1, 3),
            (2, 1, 22), // 102 kB: long now
            (7, 0, 0),  // tick: q_th recomputed with m_L = 1
            (3, 1, 9),
            (4, 2, 30), // second flow, short
            (7, 0, 5),
            (5, 1, 55),
            (6, 1, 2), // FIN
            (7, 0, 1),
        ];
        run_conformance(4, &ops, None).unwrap();
    }

    /// Mutation self-check: arm the seeded bug (granularity update 1 skips
    /// its recompute) and require that (a) the conformance oracle catches
    /// it within the budgeted cases, (b) the failure shrinks and persists
    /// to a regression file, and (c) replaying that file alone reproduces
    /// the failure. This is the proof the fuzzing pipeline detects a real
    /// control-law bug end to end.
    #[cfg(feature = "fault-inject")]
    #[test]
    fn mutation_self_check_catches_skipped_recompute() {
        use proptest::TestCaseError;
        use std::panic::{catch_unwind, AssertUnwindSafe};

        let dir = std::env::temp_dir().join(format!("tlb-fuzz-mutation-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let run = |cases: u32| {
            let dir = dir.clone();
            catch_unwind(AssertUnwindSafe(move || {
                proptest::run_cases_with(
                    "mutation_self_check",
                    cases,
                    0,
                    Some(dir),
                    ops_strategy(),
                    |(n_ports, ops)| {
                        run_conformance(n_ports, &ops, Some(1)).map_err(TestCaseError::fail)
                    },
                );
            }))
        };

        // (a) The oracle must catch the armed bug.
        let first = run(64);
        assert!(
            first.is_err(),
            "seeded recompute-skip went undetected by the conformance oracle"
        );

        // (b) The failure must have shrunk and persisted.
        let file = dir.join("mutation_self_check.txt");
        let body = std::fs::read_to_string(&file).expect("regression file must be written");
        assert!(
            body.lines()
                .any(|l| l.starts_with("cc ") && l.contains("# shrunk input:")),
            "regression file must hold a shrunk case:\n{body}"
        );

        // (c) Replaying the persisted case alone (zero fresh cases) must
        // reproduce the failure.
        let replay = run(0);
        assert!(replay.is_err(), "persisted regression did not replay");

        let _ = std::fs::remove_dir_all(&dir);
    }
}
