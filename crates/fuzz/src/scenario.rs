//! Randomized-but-valid simulation scenarios.
//!
//! A scenario is a pure function of its [`RawScenario`] tuple: topology
//! shape (leaf-spine or k=4 fat tree), link speed, scheme choice,
//! workload mix, (optionally mid-run) asymmetric degradation or
//! improvement, and (optionally) a binary link failure/repair pair. The
//! tuple encoding keeps the whole scenario shrinkable by the vendored
//! proptest — a failing run minimizes toward the smallest fabric, the
//! fewest flows, and no degradation/failure.

use tlb_engine::{SimRng, SimTime};
use tlb_net::{
    Fabric, FatTreeBuilder, FlowId, HostId, LeafId, LeafSpineBuilder, LinkProps, SpineId,
};
use tlb_simnet::{FailureAction, FailureEvent, FailureTarget, LinkEvent, Scheme, SimConfig};
use tlb_workload::FlowSpec;

use proptest::Strategy;

/// Topology knobs: `(leaves, spines, hosts_per_leaf, gbps_tenths)`.
pub type RawTopo = (u64, u64, u64, u64);
/// Traffic knobs: `(scheme_idx, n_short, n_long, incast_fanin)`.
pub type RawTraffic = (u8, u32, u32, u32);
/// Randomness + degradation knobs:
/// `(wl_seed, degrade, bw_pct, extra_us, mid_run)`.
pub type RawFault = (u64, bool, u64, u64, bool);
/// Fabric-kind + binary-failure knobs:
/// `(topo_kind, fail, down_us, up_us, improve)`. Odd `topo_kind` swaps
/// the leaf-spine fabric for a k=4 fat tree (the `RawTopo` switch counts
/// are ignored; the link speed still applies). `fail` schedules a link
/// Down at `100 + down_us` µs on a seed-chosen LB uplink, and — when
/// `up_us > 0` — the matching repair `up_us` µs later. `improve` adds a
/// mid-run link *upgrade* ([`LinkEvent`] with a shorter propagation
/// delay), the case that makes a pristine-fabric FCT bound unsound.
pub type RawFailure = (u8, bool, u16, u16, bool);

/// The flat, shrinkable encoding of a scenario.
pub type RawScenario = (RawTopo, RawTraffic, RawFault, RawFailure);

/// The proptest strategy over the whole scenario space. Bounds are chosen
/// so every sample is valid by construction (≥2 leaves/spines, ≥4 hosts,
/// 0.5–2 Gbit/s links, `bw_factor` in [0.10, 0.99]).
pub fn scenario_strategy() -> impl Strategy<Value = RawScenario> {
    (
        (2u64..5, 2u64..7, 2u64..5, 5u64..21),
        (0u8..7, 1u32..25, 0u32..4, 0u32..7),
        (
            0u64..1_000_000,
            proptest::any::<bool>(),
            10u64..100,
            0u64..51,
            proptest::any::<bool>(),
        ),
        (
            0u8..2,
            proptest::any::<bool>(),
            0u16..2000,
            0u16..2000,
            proptest::any::<bool>(),
        ),
    )
}

/// The strategy restricted to scenarios with an active failure schedule
/// (the dedicated failure-reconvergence property samples from this, so
/// its whole case budget exercises Down/Up reconvergence instead of
/// hitting it on ~half the draws). The vendored proptest has no map
/// combinator, so this is a thin wrapper that pins the `fail` knob after
/// sampling (and after every shrink candidate, keeping shrunk cases in
/// the restricted space).
pub fn failure_scenario_strategy() -> impl Strategy<Value = RawScenario> {
    struct ForceFailure<S>(S);
    fn pin(raw: RawScenario) -> RawScenario {
        let (t, tr, f, (tk, _, down_us, up_us, imp)) = raw;
        (t, tr, f, (tk, true, down_us, up_us, imp))
    }
    impl<S: Strategy<Value = RawScenario>> Strategy for ForceFailure<S> {
        type Value = RawScenario;
        fn sample(&self, rng: &mut proptest::TestRng) -> RawScenario {
            pin(self.0.sample(rng))
        }
        fn shrink(&self, value: &RawScenario) -> Vec<RawScenario> {
            self.0.shrink(value).into_iter().map(pin).collect()
        }
    }
    ForceFailure(scenario_strategy())
}

/// Short-flow sizes, deliberately straddling the 100 KB classification
/// boundary (99 KB stays short; 100 KB is the strictly-greater edge;
/// 100 KB + 1 MSS crosses it mid-life).
const SHORT_SIZES: [u64; 7] = [1_000, 9_300, 30_000, 70_000, 99_000, 100_000, 101_460];
/// Long-flow sizes (well past the boundary).
const LONG_SIZES: [u64; 3] = [150_000, 300_000, 500_000];
/// Bytes each incast sender contributes.
const INCAST_BYTES: u64 = 30_000;

/// A decoded scenario: every knob named, ready to [`build`](Scenario::build).
#[derive(Clone, Copy, Debug)]
pub struct Scenario {
    /// Leaf switches (racks).
    pub leaves: usize,
    /// Spine switches (equal-cost paths).
    pub spines: usize,
    /// Hosts per leaf.
    pub hosts_per_leaf: usize,
    /// Link speed in tenths of Gbit/s (shared by all links).
    pub gbps_tenths: u64,
    /// Which scheme (see [`Scenario::scheme`]).
    pub scheme_idx: u8,
    /// Poisson-spaced short flows.
    pub n_short: u32,
    /// Poisson-spaced long flows.
    pub n_long: u32,
    /// Incast fan-in (0 disables the burst).
    pub incast_fanin: u32,
    /// Seed for workload + degradation placement randomness.
    pub wl_seed: u64,
    /// Whether one leaf↔spine link is degraded.
    pub degrade: bool,
    /// Degraded-link bandwidth, percent of nominal.
    pub bw_pct: u64,
    /// Degraded-link extra one-way delay, µs.
    pub extra_us: u64,
    /// Degradation arrives mid-run (via [`LinkEvent`]) instead of at t=0.
    pub mid_run: bool,
    /// Swap the leaf-spine fabric for a k=4 fat tree.
    pub fat_tree: bool,
    /// Schedule a binary link failure (and, with `up_us > 0`, its repair).
    pub fail: bool,
    /// Down-event offset past 100 µs, in µs.
    pub down_us: u16,
    /// Repair delay after the Down event, in µs (0 = never repaired).
    pub up_us: u16,
    /// Add a mid-run link upgrade (shorter propagation delay).
    pub improve: bool,
}

/// A scenario materialized into simulator inputs, plus the fabrics the
/// FCT lower-bound oracle measures against.
#[derive(Clone, Debug)]
pub struct BuiltScenario {
    /// The decoded knobs (for oracle decisions and failure messages).
    pub scenario: Scenario,
    /// Full simulator config with the conservation audit forced on.
    pub cfg: SimConfig,
    /// The workload, dense-id'd and start-sorted.
    pub flows: Vec<FlowSpec>,
    /// The topology *before* any degradation or scheduled change.
    pub pristine: Fabric,
    /// The *best* per-link state the fabric reaches at any point of the
    /// run's schedule (pristine plus every mid-run improvement). Lower
    /// bounds must be computed against this fabric, not `pristine`: a
    /// mid-run repair can legitimately let a flow beat the pristine
    /// fabric's propagation delay.
    pub bound: Fabric,
}

/// Fold a link-event schedule into the best (highest-bandwidth,
/// lowest-propagation-delay) state each link ever reaches, starting from
/// `pristine`. The result upper-bounds every fabric state the run can
/// visit, so FCT lower bounds computed from it stay sound even when the
/// schedule contains mid-run improvements. (Binary failures only remove
/// capacity, so they never enter the bound.)
pub fn bound_fabric(pristine: &Fabric, events: &[LinkEvent]) -> Fabric {
    let mut best = pristine.clone();
    let mut by_link: std::collections::BTreeMap<(usize, usize), Vec<&LinkEvent>> =
        std::collections::BTreeMap::new();
    for ev in events {
        by_link
            .entry((ev.leaf.index(), ev.spine.index()))
            .or_default()
            .push(ev);
    }
    for ((sw, up), mut evs) in by_link {
        evs.sort_by_key(|e| e.at);
        let mut cur = pristine.uplink_props(sw, up);
        let (mut best_bw, mut best_prop) = (cur.bytes_per_sec, cur.prop_delay);
        for ev in evs {
            cur.bytes_per_sec = ((cur.bytes_per_sec as f64) * ev.bw_factor).max(1.0) as u64;
            cur.prop_delay = ev.new_prop_delay.unwrap_or(cur.prop_delay) + ev.extra_delay;
            best_bw = best_bw.max(cur.bytes_per_sec);
            best_prop = best_prop.min(cur.prop_delay);
        }
        best.set_uplink(
            sw,
            up,
            LinkProps {
                bytes_per_sec: best_bw,
                prop_delay: best_prop,
            },
        );
    }
    best
}

impl Scenario {
    /// Decode the flat tuple. Infallible for any tuple within the
    /// [`scenario_strategy`] bounds.
    pub fn from_raw(raw: RawScenario) -> Scenario {
        let ((leaves, spines, hosts_per_leaf, gbps_tenths), traffic, fault, failure) = raw;
        let (scheme_idx, n_short, n_long, incast_fanin) = traffic;
        let (wl_seed, degrade, bw_pct, extra_us, mid_run) = fault;
        let (topo_kind, fail, down_us, up_us, improve) = failure;
        Scenario {
            leaves: leaves as usize,
            spines: spines as usize,
            hosts_per_leaf: hosts_per_leaf as usize,
            gbps_tenths,
            scheme_idx,
            n_short,
            n_long,
            incast_fanin,
            wl_seed,
            degrade,
            bw_pct,
            extra_us,
            mid_run,
            fat_tree: topo_kind % 2 == 1,
            fail,
            down_us,
            up_us,
            improve,
        }
    }

    /// The scheme under test. Index 5 is TLB pinned at `q_th = ∞` — a
    /// degenerate config whose observable consequence (zero long-flow
    /// reroutes) the reroute oracle asserts. Index 6 is DiffFlow, the
    /// static short/long split.
    pub fn scheme(&self) -> Scheme {
        match self.scheme_idx {
            0 => Scheme::Ecmp,
            1 => Scheme::Rps,
            2 => Scheme::presto_default(),
            3 => Scheme::letflow_default(),
            4 => Scheme::tlb_default(),
            5 => {
                let mut cfg = tlb_core::TlbConfig::paper_default();
                cfg.threshold_mode = tlb_core::ThresholdMode::Fixed(u64::MAX);
                Scheme::Tlb(cfg)
            }
            _ => Scheme::diffflow_default(),
        }
    }

    /// True for the pinned-TLB variant the reroute oracle keys on.
    pub fn is_pinned_tlb(&self) -> bool {
        self.scheme_idx == 5
    }

    /// Hosts in this scenario's fabric.
    pub fn n_hosts(&self) -> usize {
        if self.fat_tree {
            16 // k=4 fat tree: k³/4.
        } else {
            self.leaves * self.hosts_per_leaf
        }
    }

    /// Materialize config + flows. Deterministic: same `self`, same output.
    pub fn build(&self) -> BuiltScenario {
        let pristine: Fabric = if self.fat_tree {
            FatTreeBuilder::new(4)
                .link_gbps(self.gbps_tenths as f64 / 10.0)
                .target_rtt(SimTime::from_micros(100))
                .build()
                .into()
        } else {
            LeafSpineBuilder::new(self.leaves, self.spines, self.hosts_per_leaf)
                .link_gbps(self.gbps_tenths as f64 / 10.0)
                .target_rtt(SimTime::from_micros(100))
                .build()
                .into()
        };

        let mut cfg = SimConfig::basic_paper(self.scheme());
        cfg.topo = pristine.clone();
        cfg.seed = self.wl_seed ^ 0xD1B5_4A32_D192_ED03;
        cfg.horizon = SimTime::from_secs(5);
        // Non-negotiable for fuzzing: every run is audited, even in
        // release builds (CI's fuzz-smoke job runs optimized).
        cfg.audit = true;
        // Pin packet fidelity regardless of `TLB_FIDELITY` so scenarios
        // stay pure functions of their raw parameters; the hybrid
        // differential runner overrides this explicitly on its own copy.
        cfg.fidelity = tlb_simnet::FidelityKind::Packet;

        let flows = self.flows();
        cfg.trace_flows = flows.iter().take(3).map(|f| f.id).collect();

        if self.degrade {
            let mut drng = SimRng::new(self.wl_seed ^ 0x9E37_79B9_7F4A_7C15);
            let leaf = LeafId(drng.index(pristine.n_lb_switches()) as u32);
            let spine = SpineId(drng.index(pristine.n_spines()) as u32);
            let bw_factor = self.bw_pct as f64 / 100.0;
            let extra = SimTime::from_micros(self.extra_us);
            if self.mid_run {
                cfg.link_events.push(LinkEvent {
                    at: SimTime::from_millis(1),
                    leaf,
                    spine,
                    bw_factor,
                    new_prop_delay: None,
                    extra_delay: extra,
                });
            } else {
                cfg.topo.degrade_link(leaf, spine, bw_factor, extra);
            }
        }

        if self.improve {
            // Mid-run repair/upgrade: a seed-chosen uplink gets its
            // propagation delay halved (and a modest bandwidth bump) at
            // 1.5 ms. This is exactly the case where the pristine fabric
            // stops being an upper bound — `bound` picks it up.
            let mut irng = SimRng::new(self.wl_seed ^ 0x2545_F491_4F6C_DD1D);
            let leaf = LeafId(irng.index(pristine.n_lb_switches()) as u32);
            let spine = SpineId(irng.index(pristine.n_spines()) as u32);
            let prop = pristine
                .uplink_props(leaf.index(), spine.index())
                .prop_delay;
            cfg.link_events.push(LinkEvent {
                at: SimTime::from_micros(1500),
                leaf,
                spine,
                bw_factor: 1.25,
                new_prop_delay: Some(SimTime::from_nanos(prop.as_nanos() / 2)),
                extra_delay: SimTime::ZERO,
            });
        }

        if self.fail {
            // Binary failure on a seed-chosen LB uplink, plus (optionally)
            // the matching repair. Both LB tiers are eligible targets in a
            // fat tree (edges and aggs share the uplink-count accessor).
            let mut frng = SimRng::new(self.wl_seed ^ 0xA076_1D64_78BD_642F);
            let sw = LeafId(frng.index(pristine.n_lb_switches()) as u32);
            let up = SpineId(frng.index(pristine.n_spines()) as u32);
            let down_at = SimTime::from_micros(100 + self.down_us as u64);
            cfg.failure_events.push(FailureEvent {
                at: down_at,
                target: FailureTarget::Link { sw, up },
                action: FailureAction::Down,
            });
            if self.up_us > 0 {
                cfg.failure_events.push(FailureEvent {
                    at: down_at + SimTime::from_micros(self.up_us as u64),
                    target: FailureTarget::Link { sw, up },
                    action: FailureAction::Up,
                });
            }
        }

        let bound = bound_fabric(&pristine, &cfg.link_events);

        BuiltScenario {
            scenario: *self,
            cfg,
            flows,
            pristine,
            bound,
        }
    }

    /// The workload: `n_short` + `n_long` flows with exponential
    /// inter-arrival gaps (mean 100 µs), plus an optional incast burst of
    /// `incast_fanin` synchronized senders at t = 500 µs. Short flows
    /// under the 100 KB boundary get paper-style uniform deadlines.
    fn flows(&self) -> Vec<FlowSpec> {
        let n_hosts = self.n_hosts();
        let mut rng = SimRng::new(self.wl_seed);
        // (start, src, dst, size, deadline); ids assigned after sorting.
        let mut raw: Vec<(SimTime, HostId, HostId, u64, Option<SimTime>)> = Vec::new();

        let mut at_ns = 0.0f64;
        for i in 0..(self.n_short + self.n_long) {
            at_ns += rng.exp(100_000.0);
            let size = if i < self.n_short {
                SHORT_SIZES[rng.index(SHORT_SIZES.len())]
            } else {
                LONG_SIZES[rng.index(LONG_SIZES.len())]
            };
            let src = rng.index(n_hosts);
            let mut dst = rng.index(n_hosts);
            if dst == src {
                dst = (dst + 1) % n_hosts;
            }
            let deadline =
                (size < 100_000).then(|| SimTime::from_nanos(rng.f64_range(5e6, 25e6) as u64));
            raw.push((
                SimTime::from_nanos(at_ns as u64),
                HostId(src as u32),
                HostId(dst as u32),
                size,
                deadline,
            ));
        }

        if self.incast_fanin > 0 {
            let at = SimTime::from_micros(500);
            let dst = rng.index(n_hosts);
            let fanin = (self.incast_fanin as usize).min(n_hosts - 1);
            for k in 0..fanin {
                // Distinct senders: walk the host ring starting after dst.
                let src = (dst + 1 + k) % n_hosts;
                raw.push((
                    at,
                    HostId(src as u32),
                    HostId(dst as u32),
                    INCAST_BYTES,
                    Some(SimTime::from_millis(25)),
                ));
            }
        }

        // Stable sort keeps equal-start flows in generation order, so the
        // dense-id assignment is deterministic.
        raw.sort_by_key(|r| r.0);
        raw.iter()
            .enumerate()
            .map(|(i, &(start, src, dst, size_bytes, deadline))| FlowSpec {
                id: FlowId(i as u32),
                src,
                dst,
                size_bytes,
                start,
                deadline,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flows_straddle_the_classification_boundary() {
        // Over enough seeds, the generator must emit sizes on both sides
        // of (and exactly at) 100 KB.
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..40 {
            let raw = (
                (2, 2, 4, 10),
                (0, 24, 3, 0),
                (seed, false, 50, 0, false),
                (0, false, 0, 0, false),
            );
            for f in Scenario::from_raw(raw).build().flows {
                seen.insert(f.size_bytes);
            }
        }
        assert!(seen.contains(&99_000));
        assert!(seen.contains(&100_000));
        assert!(seen.contains(&101_460));
        assert!(seen.iter().any(|&s| s >= 150_000));
    }

    #[test]
    fn incast_senders_are_distinct_and_synchronized() {
        let raw = (
            (2, 2, 2, 10),
            (1, 1, 0, 6),
            (3, false, 50, 0, false),
            (0, false, 0, 0, false),
        );
        let b = Scenario::from_raw(raw).build();
        let incast: Vec<_> = b
            .flows
            .iter()
            .filter(|f| f.start == SimTime::from_micros(500) && f.size_bytes == INCAST_BYTES)
            .collect();
        // fanin 6 capped at n_hosts - 1 = 3.
        assert_eq!(incast.len(), 3);
        let dst = incast[0].dst;
        let mut srcs: Vec<_> = incast.iter().map(|f| f.src.0).collect();
        srcs.sort_unstable();
        srcs.dedup();
        assert_eq!(srcs.len(), 3, "senders must be distinct");
        assert!(incast.iter().all(|f| f.dst == dst && f.src != dst));
    }

    #[test]
    fn static_degradation_keeps_pristine_untouched() {
        let raw = (
            (3, 4, 2, 10),
            (0, 4, 1, 0),
            (11, true, 25, 30, false),
            (0, false, 0, 0, false),
        );
        let b = Scenario::from_raw(raw).build();
        assert!(b.cfg.topo.is_asymmetric(), "static degradation applied");
        assert!(!b.pristine.is_asymmetric(), "pristine stays undegraded");
        assert!(b.cfg.link_events.is_empty());
    }

    #[test]
    fn mid_run_degradation_becomes_a_link_event() {
        let raw = (
            (3, 4, 2, 10),
            (0, 4, 1, 0),
            (11, true, 25, 30, true),
            (0, false, 0, 0, false),
        );
        let b = Scenario::from_raw(raw).build();
        assert!(!b.cfg.topo.is_asymmetric(), "fabric starts symmetric");
        assert_eq!(b.cfg.link_events.len(), 1);
        let ev = b.cfg.link_events[0];
        assert_eq!(ev.at, SimTime::from_millis(1));
        assert!((ev.bw_factor - 0.25).abs() < 1e-12);
        assert_eq!(ev.extra_delay, SimTime::from_micros(30));
    }
}
