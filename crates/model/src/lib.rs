//! # tlb-model — the queueing analysis behind TLB's adaptive granularity
//!
//! Faithful implementation of §4.1 of the paper (Equations 1–9): an
//! M/G/1-FCFS model of the per-port queues that yields the minimum
//! long-flow switching threshold `q_th` guaranteeing short flows meet a
//! deadline `D`.
//!
//! Symbols (paper ↔ here):
//!
//! | paper | field | meaning |
//! |---|---|---|
//! | `n` | [`ModelParams::n_paths`] | equal-cost paths |
//! | `m_S`, `m_L` | `m_short`, `m_long` | active short / long flows |
//! | `C` | `capacity` | bottleneck link capacity (bytes/s) |
//! | `RTT` | `rtt` | round-trip propagation delay (s) |
//! | `t` | `interval` | granularity update interval (s, default 500 µs) |
//! | `W_L` | `w_long` | long-flow max window (bytes, default 64 KB) |
//! | `X` | `mean_short` | mean short-flow size (bytes) |
//! | `MSS` | `mss` | segment payload size (bytes) |
//! | `D` | `deadline` | short-flow deadline budget (s) |
//!
//! The derivation chain: Eq. 1/2 split the `n` paths into `n_L` for long
//! flows (enough to drain their window-limited sending rate) and `n_S` for
//! short ones; Eq. 3 counts slow-start rounds; Eq. 4–7 give the mean short
//! FCT on `n_S` paths via the Pollaczek–Khintchine formula; setting
//! `FCT_S = D` and eliminating `n_S` yields the Eq. 9 lower bound on `q_th`.

use std::fmt;

/// Inputs to the Eq. 9 threshold computation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelParams {
    /// Total number of equal-cost paths `n`.
    pub n_paths: f64,
    /// Number of active short flows `m_S`.
    pub m_short: f64,
    /// Number of active long flows `m_L`.
    pub m_long: f64,
    /// Bottleneck link capacity `C` in bytes/second.
    pub capacity: f64,
    /// Round-trip propagation delay `RTT` in seconds.
    pub rtt: f64,
    /// Update interval `t` in seconds (paper default 500 µs).
    pub interval: f64,
    /// Long-flow maximum window `W_L` in bytes (paper default 64 KB).
    pub w_long: f64,
    /// Mean short-flow size `X` in bytes (paper's verification uses 70 KB).
    pub mean_short: f64,
    /// TCP segment payload `MSS` in bytes.
    pub mss: f64,
    /// Short-flow deadline `D` in seconds.
    pub deadline: f64,
}

impl ModelParams {
    /// The paper's §4.2 model-verification defaults: 15 paths, 3 long and
    /// 100 short flows, 1 Gbit/s, 100 µs RTT, t = 500 µs, W_L = 64 KB,
    /// X̄ = 70 KB, MSS = 1460 B, D = 10 ms (25th pct of U[5 ms, 25 ms]).
    pub fn paper_defaults() -> ModelParams {
        ModelParams {
            n_paths: 15.0,
            m_short: 100.0,
            m_long: 3.0,
            capacity: 125_000_000.0,
            rtt: 100e-6,
            interval: 500e-6,
            w_long: 65_535.0,
            mean_short: 70_000.0,
            mss: 1460.0,
            deadline: 10e-3,
        }
    }

    /// Basic sanity of the inputs; all quantities must be positive.
    pub fn validate(&self) -> Result<(), String> {
        let fields = [
            ("n_paths", self.n_paths),
            ("m_long", self.m_long),
            ("capacity", self.capacity),
            ("rtt", self.rtt),
            ("interval", self.interval),
            ("w_long", self.w_long),
            ("mean_short", self.mean_short),
            ("mss", self.mss),
            ("deadline", self.deadline),
        ];
        for (name, v) in fields {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("{name} must be positive and finite, got {v}"));
            }
        }
        if !self.m_short.is_finite() || self.m_short < 0.0 {
            return Err(format!(
                "m_short must be non-negative, got {}",
                self.m_short
            ));
        }
        Ok(())
    }

    /// Pure transmission time of one mean-size short flow, `X / C` seconds.
    #[inline]
    pub fn short_tx_time(&self) -> f64 {
        self.mean_short / self.capacity
    }
}

/// Hard physical lower bound on any flow's completion time: the payload's
/// serialization time at the access-link capacity plus the minimum one-way
/// propagation delay its last byte must cross. No queueing, handshake,
/// slow-start, loss-recovery, or per-packet header term is included, so
/// every correctly-simulated FCT must weakly exceed it — the fuzzer's FCT
/// oracle rejects a run otherwise (a violated bound means time travel or
/// lost accounting, not an aggressive transport).
pub fn fct_lower_bound(size_bytes: f64, capacity_bps: f64, one_way_prop_s: f64) -> f64 {
    debug_assert!(size_bytes > 0.0 && capacity_bps > 0.0 && one_way_prop_s >= 0.0);
    size_bytes / capacity_bps + one_way_prop_s
}

/// Eq. 3 — the number of RTT rounds a short flow of `x_bytes` needs in slow
/// start with an initial window of 2 segments (2, 4, 8, … doubling).
///
/// `r = ⌊log₂(X / MSS)⌋ + 1`, clamped to at least 1 (a sub-MSS flow still
/// takes one round).
pub fn slow_start_rounds(x_bytes: f64, mss: f64) -> f64 {
    debug_assert!(x_bytes > 0.0 && mss > 0.0);
    let ratio = x_bytes / mss;
    if ratio <= 1.0 {
        return 1.0;
    }
    (ratio.log2().floor() + 1.0).max(1.0)
}

/// Eq. 5/6 — Pollaczek–Khintchine expected waiting time of an M/G/1-FCFS
/// queue: `E[W] = (1 + Cv²)/2 · ρ/(1-ρ) · E[S]`.
///
/// Returns `f64::INFINITY` when the queue is unstable (`ρ ≥ 1`).
pub fn pk_wait(rho: f64, service: f64, cv2: f64) -> f64 {
    debug_assert!(rho >= 0.0 && service >= 0.0 && cv2 >= 0.0);
    if rho >= 1.0 {
        return f64::INFINITY;
    }
    (1.0 + cv2) / 2.0 * rho / (1.0 - rho) * service
}

/// Eq. 8 solved for the mean short-flow FCT, given `n_s` paths dedicated to
/// short flows.
///
/// Expanding Eq. 8 gives the quadratic
/// `2·n_S·C·F² − 2X(m_S + n_S)·F + m_S·X·(2X − r)/C = 0` — we take the
/// larger root, which reduces to the pure transmission time `X/C` as
/// `m_S → 0`. Returns `None` when the system is overloaded (no stable
/// positive solution with `ρ < 1`).
pub fn mean_fct_short(p: &ModelParams, n_s: f64) -> Option<f64> {
    if n_s <= 0.0 {
        return None;
    }
    let x = p.mean_short;
    let c = p.capacity;
    let r = slow_start_rounds(x, p.mss);
    let a = 2.0 * n_s * c;
    let b = -2.0 * x * (p.m_short + n_s);
    let k = p.m_short * x * (2.0 * x - r) / c;
    let disc = b * b - 4.0 * a * k;
    if disc < 0.0 {
        return None;
    }
    let f = (-b + disc.sqrt()) / (2.0 * a);
    // Validity: the M/G/1 load must be strictly below 1, i.e. the Eq. 8
    // denominator F·n_S·C − m_S·X must be positive, and F ≥ X/C.
    if f * n_s * c <= p.m_short * x || f < x / c {
        return None;
    }
    Some(f)
}

/// The number of paths short flows need so their mean FCT equals the
/// deadline `D` (Eq. 8 inverted; the `n_S`-coefficient of Eq. 9).
///
/// Returns `f64::INFINITY` when `D ≤ X/C` (the deadline is shorter than the
/// pure transmission time — infeasible at any path count).
pub fn required_short_paths(p: &ModelParams) -> f64 {
    let x = p.mean_short;
    let c = p.capacity;
    let d = p.deadline;
    let slack = d - x / c;
    if slack <= 0.0 {
        return f64::INFINITY;
    }
    let r = slow_start_rounds(x, p.mss);
    p.m_short * (r * x / c + 2.0 * slack * x) / (2.0 * slack * d * c)
}

/// The minimum long-flow switching threshold of Eq. 9.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QTh {
    /// Long flows may switch once their queue reaches this many **bytes**.
    Finite(f64),
    /// Short flows need every path (`n_S_required ≥ n`): long flows must
    /// never switch — they stay pinned to their current path.
    Infinite,
}

impl QTh {
    /// The threshold in packets of `pkt_bytes` each (`None` if infinite).
    pub fn as_packets(&self, pkt_bytes: f64) -> Option<f64> {
        match *self {
            QTh::Finite(b) => Some(b / pkt_bytes),
            QTh::Infinite => None,
        }
    }

    /// The threshold in bytes, mapping `Infinite` to `u64::MAX`.
    pub fn as_bytes_saturating(&self) -> u64 {
        match *self {
            QTh::Finite(b) => b.min(u64::MAX as f64) as u64,
            QTh::Infinite => u64::MAX,
        }
    }
}

impl fmt::Display for QTh {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QTh::Finite(b) => write!(f, "{b:.0}B"),
            QTh::Infinite => write!(f, "inf"),
        }
    }
}

/// Eq. 9 — the minimum `q_th` (in bytes) such that short flows on the
/// remaining paths meet deadline `D`:
///
/// ```text
/// q_th ≥ m_L·W_L·(t/RTT) / (n − n_S_required) − t·C
/// ```
///
/// clamped below at 0 (a non-positive bound means long flows may switch on
/// every packet). When `n_S_required ≥ n` the result is [`QTh::Infinite`].
///
/// ```
/// use tlb_model::{q_th_min, ModelParams, QTh};
///
/// let mut p = ModelParams::paper_defaults();
/// let base = q_th_min(&p);
/// p.m_short *= 2.0; // heavier short-flow load...
/// let heavier = q_th_min(&p);
/// match (base, heavier) {
///     (QTh::Finite(a), QTh::Finite(b)) => assert!(b > a), // ...larger granularity
///     _ => unreachable!("paper defaults are finite"),
/// }
/// ```
pub fn q_th_min(p: &ModelParams) -> QTh {
    let n_s_req = required_short_paths(p);
    let denom = p.n_paths - n_s_req;
    if denom <= 0.0 {
        return QTh::Infinite;
    }
    let q = p.m_long * p.w_long * (p.interval / p.rtt) / denom - p.interval * p.capacity;
    QTh::Finite(q.max(0.0))
}

/// Eq. 2 — the number of paths long flows occupy given a threshold `q_th`
/// (bytes): `n_L = m_L·W_L·(t/RTT) / (q_th + t·C)`.
pub fn long_paths(p: &ModelParams, q_th_bytes: f64) -> f64 {
    p.m_long * p.w_long * (p.interval / p.rtt) / (q_th_bytes + p.interval * p.capacity)
}

/// Eq. 7 — short-flow packet arrival rate (bytes/s per path) given their
/// mean FCT and allocated paths.
pub fn short_arrival_rate(p: &ModelParams, fct: f64, n_s: f64) -> f64 {
    debug_assert!(fct > 0.0 && n_s > 0.0);
    p.m_short * p.mean_short / (fct * n_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p() -> ModelParams {
        ModelParams::paper_defaults()
    }

    #[test]
    fn defaults_validate() {
        p().validate().unwrap();
    }

    #[test]
    fn validate_rejects_nonpositive() {
        let mut bad = p();
        bad.capacity = 0.0;
        assert!(bad.validate().is_err());
        let mut bad = p();
        bad.deadline = -1.0;
        assert!(bad.validate().is_err());
        let mut ok = p();
        ok.m_short = 0.0; // zero short flows is legal
        ok.validate().unwrap();
    }

    #[test]
    fn rounds_match_slow_start() {
        // One MSS: a single round.
        assert_eq!(slow_start_rounds(1460.0, 1460.0), 1.0);
        // Sub-MSS flows still take one round.
        assert_eq!(slow_start_rounds(100.0, 1460.0), 1.0);
        // 70 KB / 1460 B = 47.9 segments: floor(log2(47.9)) + 1 = 6.
        assert_eq!(slow_start_rounds(70_000.0, 1460.0), 6.0);
        // 100 KB -> 68.5 segments -> floor(6.09)+1 = 7.
        assert_eq!(slow_start_rounds(100_000.0, 1460.0), 7.0);
    }

    #[test]
    fn pk_wait_basics() {
        // Deterministic service (Cv²=0), ρ=0.5: E[W] = 0.5/(2·0.5)·S = 0.5·S.
        let w = pk_wait(0.5, 2.0, 0.0);
        assert!((w - 1.0).abs() < 1e-12);
        // Unstable queue.
        assert_eq!(pk_wait(1.0, 1.0, 0.0), f64::INFINITY);
        // Empty queue: no waiting.
        assert_eq!(pk_wait(0.0, 1.0, 0.0), 0.0);
        // Higher variability waits longer.
        assert!(pk_wait(0.5, 1.0, 1.0) > pk_wait(0.5, 1.0, 0.0));
    }

    #[test]
    fn fct_reduces_to_tx_time_without_load() {
        let mut params = p();
        params.m_short = 0.0;
        let f = mean_fct_short(&params, 10.0).unwrap();
        assert!((f - params.short_tx_time()).abs() < 1e-12);
    }

    #[test]
    fn fct_grows_with_flows_and_shrinks_with_paths() {
        let params = p();
        let f10 = mean_fct_short(&params, 10.0).unwrap();
        let f14 = mean_fct_short(&params, 14.0).unwrap();
        assert!(f10 > f14, "more paths must not slow short flows");
        let mut more = params;
        more.m_short = 200.0;
        let f10_more = mean_fct_short(&more, 10.0).unwrap();
        assert!(f10_more > f10, "more short flows must increase FCT");
    }

    #[test]
    fn fct_diverges_under_extreme_load() {
        // Eq. 8 is self-consistent: more flows stretch the FCT (reducing the
        // per-flow arrival rate) rather than destabilizing the queue, so the
        // FCT grows roughly linearly in m_S instead of returning None.
        let mut params = p();
        params.m_short = 1e6;
        let f = mean_fct_short(&params, 1.0).expect("self-consistent solution exists");
        assert!(
            f > 100.0 * params.deadline,
            "expected a huge FCT under extreme load, got {f}"
        );
    }

    #[test]
    fn required_paths_infeasible_deadline() {
        let mut params = p();
        params.deadline = params.short_tx_time() / 2.0;
        assert_eq!(required_short_paths(&params), f64::INFINITY);
        assert_eq!(q_th_min(&params), QTh::Infinite);
    }

    #[test]
    fn q_th_paper_defaults_is_finite_positive() {
        match q_th_min(&p()) {
            QTh::Finite(b) => {
                assert!(
                    b > 0.0,
                    "paper defaults should need a positive threshold, got {b}"
                );
                // Order of magnitude: tens-to-hundreds of packets, not millions.
                let pkts = b / 1500.0;
                assert!(pkts < 10_000.0, "q_th implausibly large: {pkts} pkts");
            }
            QTh::Infinite => panic!("paper defaults should yield a finite threshold"),
        }
    }

    #[test]
    fn q_th_consistency_with_fct() {
        // With q_th at the Eq. 9 bound, long flows occupy n_L = Eq. 2 paths,
        // and the short flows on the remaining n - n_L paths meet D.
        let params = p();
        if let QTh::Finite(q) = q_th_min(&params) {
            let n_l = long_paths(&params, q);
            let n_s = params.n_paths - n_l;
            let fct = mean_fct_short(&params, n_s).expect("stable");
            assert!(
                fct <= params.deadline * (1.0 + 1e-9),
                "fct {fct} exceeds deadline {}",
                params.deadline
            );
            // And tight: with the exact bound the deadline binds (unless the
            // clamp at 0 engaged).
            if q > 0.0 {
                assert!((fct - params.deadline).abs() / params.deadline < 1e-6);
            }
        } else {
            panic!("expected finite threshold");
        }
    }

    #[test]
    fn q_th_zero_when_few_flows() {
        // Nearly no traffic: long flows should be free to switch per packet.
        let mut params = p();
        params.m_short = 1.0;
        params.m_long = 0.1;
        assert_eq!(q_th_min(&params), QTh::Finite(0.0));
    }

    #[test]
    fn q_th_infinite_when_saturated() {
        let mut params = p();
        params.m_short = 100_000.0;
        assert_eq!(q_th_min(&params), QTh::Infinite);
    }

    #[test]
    fn qth_as_packets_and_bytes() {
        assert_eq!(QTh::Finite(15_000.0).as_packets(1500.0), Some(10.0));
        assert_eq!(QTh::Infinite.as_packets(1500.0), None);
        assert_eq!(QTh::Finite(42.4).as_bytes_saturating(), 42);
        assert_eq!(QTh::Infinite.as_bytes_saturating(), u64::MAX);
        assert_eq!(QTh::Infinite.to_string(), "inf");
        assert_eq!(QTh::Finite(1000.0).to_string(), "1000B");
    }

    #[test]
    fn long_paths_monotone_in_qth() {
        let params = p();
        let n1 = long_paths(&params, 0.0);
        let n2 = long_paths(&params, 100_000.0);
        assert!(
            n1 > n2,
            "larger threshold concentrates long flows on fewer paths"
        );
    }

    #[test]
    fn arrival_rate_eq7() {
        let params = p();
        let lambda = short_arrival_rate(&params, 0.01, 10.0);
        assert!((lambda - 100.0 * 70_000.0 / (0.01 * 10.0)).abs() < 1e-9);
    }

    /// Extract a finite q_th or map Infinite to +inf — property-test helper.
    fn finite(q: QTh) -> f64 {
        match q {
            QTh::Finite(b) => b,
            QTh::Infinite => f64::INFINITY,
        }
    }

    proptest! {
        /// Fig. 7(a): q_th non-decreasing in the number of short flows.
        #[test]
        fn prop_qth_monotone_m_short(m1 in 1.0f64..400.0, dm in 0.0f64..200.0) {
            let mut a = p();
            a.m_short = m1;
            let mut b = a;
            b.m_short = m1 + dm;
            prop_assert!(finite(q_th_min(&b)) >= finite(q_th_min(&a)) - 1e-6);
        }

        /// Fig. 7(b): q_th non-decreasing in the number of long flows.
        #[test]
        fn prop_qth_monotone_m_long(m1 in 0.5f64..20.0, dm in 0.0f64..20.0) {
            let mut a = p();
            a.m_long = m1;
            let mut b = a;
            b.m_long = m1 + dm;
            prop_assert!(finite(q_th_min(&b)) >= finite(q_th_min(&a)) - 1e-6);
        }

        /// Fig. 7(c): q_th non-increasing in the number of paths.
        #[test]
        fn prop_qth_monotone_paths(n1 in 4.0f64..40.0, dn in 0.0f64..40.0) {
            let mut a = p();
            a.n_paths = n1;
            let mut b = a;
            b.n_paths = n1 + dn;
            prop_assert!(finite(q_th_min(&b)) <= finite(q_th_min(&a)) + 1e-6);
        }

        /// Fig. 7(d): q_th non-increasing in the deadline.
        #[test]
        fn prop_qth_monotone_deadline(d1 in 2e-3f64..40e-3, dd in 0.0f64..40e-3) {
            let mut a = p();
            a.deadline = d1;
            let mut b = a;
            b.deadline = d1 + dd;
            prop_assert!(finite(q_th_min(&b)) <= finite(q_th_min(&a)) + 1e-6);
        }

        /// Eq. 8's solution, when it exists, is at least the transmission
        /// time and decreasing in n_s.
        #[test]
        fn prop_fct_bounds(m_s in 0.0f64..300.0, n_s in 1.0f64..15.0) {
            let mut params = p();
            params.m_short = m_s;
            if let Some(f) = mean_fct_short(&params, n_s) {
                prop_assert!(f >= params.short_tx_time() - 1e-12);
                if let Some(f2) = mean_fct_short(&params, n_s + 1.0) {
                    prop_assert!(f2 <= f + 1e-12);
                }
            }
        }

        /// Slow-start rounds grow (weakly) with flow size and are >= 1.
        #[test]
        fn prop_rounds_monotone(x in 10.0f64..1e7, scale in 1.0f64..8.0) {
            let r1 = slow_start_rounds(x, 1460.0);
            let r2 = slow_start_rounds(x * scale, 1460.0);
            prop_assert!(r1 >= 1.0);
            prop_assert!(r2 >= r1);
        }

        /// The FCT lower bound is positive, monotone in size, and always
        /// below the Eq. 8 model FCT at the same capacity (the model adds
        /// queueing and multi-round serialization on top of the physics).
        #[test]
        fn prop_fct_lower_bound_is_a_lower_bound(
            size in 100.0f64..1e7,
            prop_us in 1.0f64..500.0,
            m_s in 1.0f64..200.0,
        ) {
            let params = ModelParams { m_short: m_s, ..p() };
            let prop_s = prop_us * 1e-6;
            let lb = fct_lower_bound(size, params.capacity, prop_s);
            prop_assert!(lb > 0.0);
            prop_assert!(fct_lower_bound(size * 2.0, params.capacity, prop_s) > lb);
            if let Some(model) = mean_fct_short(&params, 13.0) {
                let model_lb = fct_lower_bound(params.mean_short, params.capacity, 0.0);
                prop_assert!(model >= model_lb - 1e-12,
                    "model FCT {model} below physics {model_lb}");
            }
        }
    }
}
