//! # tlb-switch — the output-queued switch model
//!
//! Switches in the TLB reproduction are output-queued: every output port owns
//! one FIFO [`OutPort`] with drop-tail admission and DCTCP-style
//! instantaneous ECN marking. Load-balancing schemes plug into the leaf
//! switch through the [`LoadBalancer`] trait, deciding which uplink each
//! upstream packet takes based on a [`PortView`] of the local uplink queues —
//! exactly the switch-local information the paper's designs (TLB, DRILL,
//! LetFlow...) assume.

pub mod flowmap;
pub mod lb;
pub mod port;

pub use flowmap::FlowMap;
pub use lb::{LoadBalancer, PortView};
pub use port::{Enqueued, OutPort, PortStats, QueueCfg};
