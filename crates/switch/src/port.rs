//! One output port: FIFO queue + drop-tail + ECN marking + counters.

use std::collections::VecDeque;
use tlb_engine::{time::tx_time, SimTime};
use tlb_net::{LinkProps, Packet};

/// Queue admission/marking configuration for a port.
#[derive(Clone, Copy, Debug)]
pub struct QueueCfg {
    /// Drop-tail capacity in packets (the paper uses 256 or 512).
    pub capacity_pkts: usize,
    /// DCTCP marking threshold `K` in packets: an ECN-capable packet is
    /// marked CE when, at enqueue, the queue already holds at least this
    /// many packets. `None` disables marking (plain drop-tail TCP).
    pub ecn_threshold_pkts: Option<usize>,
}

impl QueueCfg {
    /// The paper's NS2 setup: 256-packet buffer, DCTCP `K = 20` (the
    /// standard marking threshold for 1 Gbit/s links).
    pub fn paper_default() -> QueueCfg {
        QueueCfg {
            capacity_pkts: 256,
            ecn_threshold_pkts: Some(20),
        }
    }
}

/// Result of offering a packet to a port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Enqueued {
    /// Packet admitted. `marked` reports ECN CE marking; `was_idle` tells
    /// the caller the port had no packet in service or queued before this
    /// one, i.e. serialization of this packet should be scheduled now.
    Queued { marked: bool, was_idle: bool },
    /// Queue full; the packet was dropped.
    Dropped,
}

/// Lifetime counters for one port.
#[derive(Clone, Copy, Debug, Default)]
pub struct PortStats {
    /// Packets admitted to the queue.
    pub enqueued: u64,
    /// Packets rejected by drop-tail.
    pub dropped: u64,
    /// Packets that received a CE mark here.
    pub marked: u64,
    /// Bytes fully serialized onto the wire.
    pub bytes_tx: u64,
    /// Packets fully serialized onto the wire.
    pub pkts_tx: u64,
    /// Time the transmitter spent busy (for utilization).
    pub busy: SimTime,
    /// Peak queue length observed at enqueue time, in packets.
    pub peak_qlen_pkts: usize,
}

/// An output port: a FIFO of packets plus its outgoing link.
///
/// The port does not schedule events itself — the simulation driver calls
/// [`OutPort::start_service`] / [`OutPort::finish_service`] around the
/// serialization events it schedules, so the port stays a pure data
/// structure that is easy to test.
#[derive(Debug)]
pub struct OutPort {
    link: LinkProps,
    cfg: QueueCfg,
    queue: VecDeque<Packet>,
    queued_bytes: u64,
    /// The packet being serialized, if any: popped from `queue` but its
    /// last bit has not left yet. Owning it here (rather than carrying it
    /// in the end-of-serialization event) keeps the driver's event payload
    /// small and lets audits see the in-flight packet.
    in_service: Option<Packet>,
    /// Serialization time of the in-service packet, memoized at
    /// [`OutPort::start_service`] against the link properties *then* — so
    /// a mid-service [`OutPort::set_link`] neither reschedules the packet
    /// nor mis-accounts its busy time.
    service_tx: SimTime,
    /// Administratively down (failure injection): new packets are dropped
    /// at admission while anything already queued or in flight drains
    /// normally — the counters stay on the same `stats.dropped` path the
    /// conservation audit cross-checks per port.
    down: bool,
    stats: PortStats,
}

impl OutPort {
    /// A fresh, idle port on the given link.
    pub fn new(link: LinkProps, cfg: QueueCfg) -> OutPort {
        OutPort {
            link,
            cfg,
            // Drop-tail caps the queue at `capacity_pkts`, so this is the
            // exact worst case — materializing it up front keeps a port
            // hitting its all-time depth peak mid-run off the allocator
            // (the steady-state allocation gate counts every regrowth).
            queue: VecDeque::with_capacity(cfg.capacity_pkts),
            queued_bytes: 0,
            in_service: None,
            service_tx: SimTime::ZERO,
            down: false,
            stats: PortStats::default(),
        }
    }

    /// The outgoing link's properties.
    #[inline]
    pub fn link(&self) -> LinkProps {
        self.link
    }

    /// Replace the link's properties mid-run (failure/degradation
    /// injection). Affects packets serialized from now on; the packet
    /// currently on the wire keeps its old timing.
    pub fn set_link(&mut self, link: LinkProps) {
        self.link = link;
    }

    /// Administratively bring the port down or back up (failure
    /// injection). A down port rejects new packets at admission
    /// ([`OutPort::enqueue`] returns [`Enqueued::Dropped`]) but drains
    /// whatever is already queued or in service, so every packet's fate
    /// stays accounted.
    pub fn set_down(&mut self, down: bool) {
        self.down = down;
    }

    /// True while the port is administratively down.
    #[inline]
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Queue length in packets (excluding the packet in service).
    #[inline]
    pub fn len_pkts(&self) -> usize {
        self.queue.len()
    }

    /// Queue length in bytes (excluding the packet in service).
    #[inline]
    pub fn len_bytes(&self) -> u64 {
        self.queued_bytes
    }

    /// True when nothing is queued or being serialized.
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.in_service.is_none()
    }

    /// Serialization time of a packet of `bytes` on this port's link.
    #[inline]
    pub fn tx_time(&self, bytes: u64) -> SimTime {
        tx_time(bytes, self.link.bytes_per_sec)
    }

    /// Offer a packet. Applies drop-tail admission and ECN marking, stamps
    /// `enqueued_at`, and reports whether the caller must kick off
    /// serialization (`was_idle`).
    pub fn enqueue(&mut self, mut pkt: Packet, now: SimTime) -> Enqueued {
        if self.down || self.queue.len() >= self.cfg.capacity_pkts {
            self.stats.dropped += 1;
            return Enqueued::Dropped;
        }
        let mut marked = false;
        if let Some(k) = self.cfg.ecn_threshold_pkts {
            // The instantaneous queue DCTCP marks against includes the
            // packet being serialized: it has left `queue` but not the port.
            let occupancy = self.queue.len() + self.in_service.is_some() as usize;
            if pkt.ecn_capable() && occupancy >= k {
                pkt.mark_ce();
                marked = true;
                self.stats.marked += 1;
            }
        }
        pkt.enqueued_at = now;
        let was_idle = self.is_idle();
        self.queued_bytes += pkt.wire_bytes as u64;
        self.queue.push_back(pkt);
        self.stats.enqueued += 1;
        self.stats.peak_qlen_pkts = self.stats.peak_qlen_pkts.max(self.queue.len());
        Enqueued::Queued { marked, was_idle }
    }

    /// Move the head packet into the service slot and mark the
    /// transmitter busy, returning a borrow of it. The caller schedules
    /// the end-of-serialization event `tx_time(pkt)` later and then calls
    /// [`OutPort::finish_service`] to take the packet back out.
    ///
    /// Panics if called while already serializing (a driver bug).
    pub fn start_service(&mut self) -> Option<&Packet> {
        assert!(self.in_service.is_none(), "start_service while busy");
        let pkt = self.queue.pop_front()?;
        self.queued_bytes -= pkt.wire_bytes as u64;
        self.service_tx = self.tx_time(pkt.wire_bytes as u64);
        Some(self.in_service.insert(pkt))
    }

    /// Serialization time of the packet currently in service, as computed
    /// when its service started. The driver schedules the
    /// end-of-serialization event from this instead of recomputing against
    /// a link that may have changed since.
    ///
    /// Panics if no packet is in service (a driver bug).
    #[inline]
    pub fn service_tx_time(&self) -> SimTime {
        assert!(self.in_service.is_some(), "service_tx_time while idle");
        self.service_tx
    }

    /// Take the fully serialized packet out of the service slot and
    /// account for it. The `bool` is `true` if more packets are waiting
    /// (the caller should start the next service immediately).
    ///
    /// Panics if no packet is in service (a driver bug).
    pub fn finish_service(&mut self) -> (Packet, bool) {
        let pkt = self.in_service.take().expect("finish_service while idle");
        self.stats.bytes_tx += pkt.wire_bytes as u64;
        self.stats.pkts_tx += 1;
        // The memoized value, not a recomputation: if the link changed
        // mid-service, the packet on the wire kept its old timing, and the
        // busy clock must agree with the schedule the driver used.
        self.stats.busy += self.service_tx;
        (pkt, !self.queue.is_empty())
    }

    /// Lifetime counters.
    #[inline]
    pub fn stats(&self) -> &PortStats {
        &self.stats
    }

    /// True while a packet is being serialized (popped from the queue but
    /// not yet fully on the wire).
    #[inline]
    pub fn in_service(&self) -> bool {
        self.in_service.is_some()
    }

    /// The packet currently being serialized, if any. Exposed for
    /// end-of-run conservation audits.
    #[inline]
    pub fn in_service_pkt(&self) -> Option<&Packet> {
        self.in_service.as_ref()
    }

    /// The packets currently queued (excluding the one in service), head
    /// first. Exposed for end-of-run conservation audits.
    pub fn iter_queued(&self) -> impl Iterator<Item = &Packet> {
        self.queue.iter()
    }

    /// Queueing delay the head-of-line packet has accumulated so far.
    pub fn head_wait(&self, now: SimTime) -> Option<SimTime> {
        self.queue
            .front()
            .map(|p| now.saturating_sub(p.enqueued_at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use tlb_net::{FlowId, HostId};

    fn link() -> LinkProps {
        LinkProps::gbps(1.0, SimTime::from_micros(10))
    }

    fn data(seq: u32) -> Packet {
        Packet::data(
            FlowId(1),
            HostId(0),
            HostId(1),
            seq,
            1460,
            40,
            SimTime::ZERO,
        )
    }

    fn cfg(cap: usize, k: Option<usize>) -> QueueCfg {
        QueueCfg {
            capacity_pkts: cap,
            ecn_threshold_pkts: k,
        }
    }

    #[test]
    fn fifo_order_preserved() {
        let mut p = OutPort::new(link(), cfg(16, None));
        for s in 0..5 {
            p.enqueue(data(s), SimTime::ZERO);
        }
        for s in 0..5 {
            assert_eq!(p.start_service().unwrap().seq, s);
            let (pkt, _) = p.finish_service();
            assert_eq!(pkt.seq, s);
        }
        assert!(p.is_idle());
    }

    #[test]
    fn drop_tail_at_capacity() {
        let mut p = OutPort::new(link(), cfg(3, None));
        for s in 0..3 {
            assert!(matches!(
                p.enqueue(data(s), SimTime::ZERO),
                Enqueued::Queued { .. }
            ));
        }
        assert_eq!(p.enqueue(data(3), SimTime::ZERO), Enqueued::Dropped);
        assert_eq!(p.stats().dropped, 1);
        assert_eq!(p.len_pkts(), 3);
    }

    #[test]
    fn ecn_marks_above_threshold() {
        let mut p = OutPort::new(link(), cfg(16, Some(2)));
        // Queue occupancies at enqueue: 0, 1 (no mark), 2, 3 (marked).
        for s in 0..4 {
            let r = p.enqueue(data(s), SimTime::ZERO);
            let expect_mark = s >= 2;
            assert_eq!(
                r,
                Enqueued::Queued {
                    marked: expect_mark,
                    was_idle: s == 0
                }
            );
        }
        assert_eq!(p.stats().marked, 2);
        // The CE bit is actually on the queued packets.
        let mut ce = 0;
        while p.start_service().is_some() {
            let (pkt, _) = p.finish_service();
            if pkt.ce() {
                ce += 1;
            }
        }
        assert_eq!(ce, 2);
    }

    #[test]
    fn ecn_counts_in_service_packet() {
        // DCTCP's instantaneous queue is what the port still holds: queued
        // packets plus the one being serialized. With K = 2, a packet that
        // sees one queued and one in service must be marked.
        let mut p = OutPort::new(link(), cfg(16, Some(2)));
        p.enqueue(data(0), SimTime::ZERO);
        p.start_service().unwrap();
        // Occupancy 1 (in service only): below K, unmarked.
        assert_eq!(
            p.enqueue(data(1), SimTime::ZERO),
            Enqueued::Queued {
                marked: false,
                was_idle: false
            }
        );
        // Occupancy 2 (one queued + one in service): at K, marked.
        assert_eq!(
            p.enqueue(data(2), SimTime::ZERO),
            Enqueued::Queued {
                marked: true,
                was_idle: false
            }
        );
        assert_eq!(p.stats().marked, 1);
        p.finish_service();
    }

    #[test]
    fn audit_accessors_reflect_state() {
        let mut p = OutPort::new(link(), cfg(16, None));
        assert!(!p.in_service());
        p.enqueue(data(0), SimTime::ZERO);
        p.enqueue(data(1), SimTime::ZERO);
        assert!(p.in_service_pkt().is_none());
        p.start_service().unwrap();
        assert!(p.in_service());
        assert_eq!(p.in_service_pkt().unwrap().seq, 0);
        let queued: Vec<u32> = p.iter_queued().map(|q| q.seq).collect();
        assert_eq!(queued, vec![1], "in-service packet is not in the queue");
        let (head, more) = p.finish_service();
        assert_eq!(head.seq, 0);
        assert!(more);
        assert!(!p.in_service());
    }

    #[test]
    fn non_ecn_capable_never_marked() {
        let mut p = OutPort::new(link(), cfg(16, Some(0)));
        let mut ctrl = Packet::control(
            FlowId(0),
            HostId(0),
            HostId(1),
            tlb_net::PktKind::Ack,
            0,
            SimTime::ZERO,
        );
        ctrl.flags = tlb_net::packet::PktFlags::empty();
        assert_eq!(
            p.enqueue(ctrl, SimTime::ZERO),
            Enqueued::Queued {
                marked: false,
                was_idle: true
            }
        );
        assert_eq!(p.stats().marked, 0);
    }

    #[test]
    fn byte_accounting_tracks_queue() {
        let mut p = OutPort::new(link(), cfg(16, None));
        p.enqueue(data(0), SimTime::ZERO);
        p.enqueue(data(1), SimTime::ZERO);
        assert_eq!(p.len_bytes(), 3000);
        p.start_service().unwrap();
        assert_eq!(p.len_bytes(), 1500);
        p.finish_service();
        assert_eq!(p.len_bytes(), 1500);
    }

    #[test]
    fn was_idle_only_when_fully_idle() {
        let mut p = OutPort::new(link(), cfg(16, None));
        let r0 = p.enqueue(data(0), SimTime::ZERO);
        assert_eq!(
            r0,
            Enqueued::Queued {
                marked: false,
                was_idle: true
            }
        );
        p.start_service().unwrap();
        // While serializing, the queue is empty but the port is not idle.
        let r1 = p.enqueue(data(1), SimTime::ZERO);
        assert_eq!(
            r1,
            Enqueued::Queued {
                marked: false,
                was_idle: false
            }
        );
        assert!(p.finish_service().1, "one more packet waits");
    }

    #[test]
    fn busy_time_accumulates() {
        let mut p = OutPort::new(link(), cfg(16, None));
        p.enqueue(data(0), SimTime::ZERO);
        p.start_service().unwrap();
        p.finish_service();
        // 1500 B at 1 Gbit/s = 12 us.
        assert_eq!(p.stats().busy, SimTime::from_micros(12));
        assert_eq!(p.stats().bytes_tx, 1500);
        assert_eq!(p.stats().pkts_tx, 1);
    }

    #[test]
    fn busy_time_uses_link_at_service_start() {
        // A mid-service link change must not retroactively change the
        // in-flight packet's accounting: set_link documents that the
        // packet on the wire keeps its old timing.
        let mut p = OutPort::new(link(), cfg(16, None));
        p.enqueue(data(0), SimTime::ZERO);
        p.start_service().unwrap();
        let scheduled = p.service_tx_time();
        assert_eq!(scheduled, SimTime::from_micros(12));
        // Halve the bandwidth while the packet is being serialized.
        p.set_link(LinkProps::gbps(0.5, SimTime::from_micros(10)));
        p.finish_service();
        assert_eq!(p.stats().busy, scheduled, "busy clock matches schedule");
        // The next packet serializes at the new rate.
        p.enqueue(data(1), SimTime::ZERO);
        p.start_service().unwrap();
        assert_eq!(p.service_tx_time(), SimTime::from_micros(24));
        p.finish_service();
        assert_eq!(p.stats().busy, SimTime::from_micros(36));
    }

    #[test]
    fn down_port_drops_at_admission_but_drains() {
        let mut p = OutPort::new(link(), cfg(16, None));
        p.enqueue(data(0), SimTime::ZERO);
        p.enqueue(data(1), SimTime::ZERO);
        p.set_down(true);
        assert!(p.is_down());
        // New arrivals are rejected and counted like drop-tail drops.
        assert_eq!(p.enqueue(data(2), SimTime::ZERO), Enqueued::Dropped);
        assert_eq!(p.stats().dropped, 1);
        // What was admitted before the failure still drains.
        assert_eq!(p.start_service().unwrap().seq, 0);
        p.finish_service();
        assert_eq!(p.start_service().unwrap().seq, 1);
        p.finish_service();
        assert!(p.is_idle());
        // Repair restores admission.
        p.set_down(false);
        assert!(matches!(
            p.enqueue(data(3), SimTime::ZERO),
            Enqueued::Queued { was_idle: true, .. }
        ));
    }

    #[test]
    fn head_wait_measures_queueing() {
        let mut p = OutPort::new(link(), cfg(16, None));
        assert_eq!(p.head_wait(SimTime::from_micros(5)), None);
        p.enqueue(data(0), SimTime::from_micros(2));
        assert_eq!(
            p.head_wait(SimTime::from_micros(5)),
            Some(SimTime::from_micros(3))
        );
    }

    #[test]
    #[should_panic(expected = "start_service while busy")]
    fn double_service_panics() {
        let mut p = OutPort::new(link(), cfg(16, None));
        p.enqueue(data(0), SimTime::ZERO);
        p.enqueue(data(1), SimTime::ZERO);
        let _ = p.start_service();
        let _ = p.start_service();
    }

    proptest! {
        /// Under any interleaving of enqueues and services, byte/packet
        /// accounting stays consistent and drop-tail is never exceeded.
        #[test]
        fn prop_accounting(ops in proptest::collection::vec(0u8..3, 1..200)) {
            let mut p = OutPort::new(link(), cfg(8, Some(4)));
            let mut seq = 0u32;
            for op in ops {
                match op {
                    0 | 1 => {
                        let before = p.len_pkts();
                        let r = p.enqueue(data(seq), SimTime::ZERO);
                        seq += 1;
                        match r {
                            Enqueued::Queued { .. } => prop_assert_eq!(p.len_pkts(), before + 1),
                            Enqueued::Dropped => {
                                prop_assert_eq!(before, 8);
                                prop_assert_eq!(p.len_pkts(), 8);
                            }
                        }
                    }
                    _ => {
                        if p.in_service() {
                            p.finish_service();
                        } else {
                            let _ = p.start_service();
                        }
                    }
                }
                let bytes: u64 = (0..p.len_pkts()).map(|_| 1500u64).sum();
                prop_assert_eq!(p.len_bytes(), bytes);
                prop_assert!(p.len_pkts() <= 8);
            }
        }
    }
}
