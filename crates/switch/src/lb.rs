//! The load-balancer plug-in interface.
//!
//! A leaf switch delegates its uplink choice for every upstream packet to a
//! [`LoadBalancer`]. The balancer only sees switch-local state — the
//! [`PortView`] of uplink queues plus the packet itself — matching the
//! deployment model of the paper (§3: "TLB is deployed at the switch,
//! without any modifications on the end-hosts").

use crate::port::OutPort;
use tlb_engine::{SimRng, SimTime};
use tlb_net::Packet;

/// A read-only view of a leaf switch's uplink ports, handed to the balancer
/// for each decision. Borrow-based: no per-packet allocation.
///
/// The `mask` (bit `i` set ⇔ uplink `i` is *live*) reflects route
/// reconvergence after failures: a dead uplink stays addressable (indices
/// are stable) but every `shortest_*` helper skips it, and schemes consult
/// [`PortView::is_live`] before sticking to a cached port. With all bits
/// set — the only state a failure-free run ever sees — each helper visits
/// ports in exactly the historical order, so masked and unmasked fabrics
/// produce bit-identical decisions and RNG consumption.
#[derive(Clone, Copy)]
pub struct PortView<'a> {
    ports: &'a [OutPort],
    mask: u64,
}

impl<'a> PortView<'a> {
    /// Wrap a slice of uplink ports, all live.
    pub fn new(ports: &'a [OutPort]) -> PortView<'a> {
        PortView {
            ports,
            mask: Self::full_mask(ports.len()),
        }
    }

    /// Wrap a slice of uplink ports with an explicit liveness mask. Bits
    /// above `ports.len()` are ignored; at least one in-range bit must be
    /// set (callers resolve the no-live-path case before the balancer).
    pub fn with_mask(ports: &'a [OutPort], mask: u64) -> PortView<'a> {
        let mask = mask & Self::full_mask(ports.len());
        assert!(mask != 0, "PortView::with_mask with no live uplink");
        PortView { ports, mask }
    }

    /// The all-live mask for `n` uplinks (`n` ≤ 64).
    #[inline]
    pub fn full_mask(n: usize) -> u64 {
        debug_assert!(n <= 64, "at most 64 uplinks per LB switch");
        if n >= 64 {
            u64::MAX
        } else {
            (1u64 << n) - 1
        }
    }

    /// The liveness mask (bit `i` set ⇔ uplink `i` usable).
    #[inline]
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// True if uplink `i` is live.
    #[inline]
    pub fn is_live(&self, i: usize) -> bool {
        self.mask & (1u64 << i) != 0
    }

    /// Number of live uplinks.
    #[inline]
    pub fn n_live(&self) -> usize {
        self.mask.count_ones() as usize
    }

    /// The index of the `k`-th live uplink (0-based, ascending index
    /// order). Panics if fewer than `k + 1` uplinks are live.
    #[inline]
    pub fn nth_live(&self, k: usize) -> usize {
        let mut m = self.mask;
        for _ in 0..k {
            m &= m - 1; // clear lowest set bit
        }
        debug_assert!(m != 0, "nth_live past the live count");
        m.trailing_zeros() as usize
    }

    /// Rank of live uplink `i` among the live uplinks (inverse of
    /// [`nth_live`](Self::nth_live)). With a full mask this is `i` itself.
    #[inline]
    pub fn live_rank(&self, i: usize) -> usize {
        debug_assert!(self.is_live(i), "live_rank of a dead uplink");
        (self.mask & ((1u64 << i) - 1)).count_ones() as usize
    }

    /// Number of uplinks (= equal-cost paths from this leaf), live or not.
    #[inline]
    pub fn n_ports(&self) -> usize {
        self.ports.len()
    }

    /// Queue length of uplink `i` in packets.
    #[inline]
    pub fn qlen_pkts(&self, i: usize) -> usize {
        self.ports[i].len_pkts()
    }

    /// Queue length of uplink `i` in bytes.
    #[inline]
    pub fn qlen_bytes(&self, i: usize) -> u64 {
        self.ports[i].len_bytes()
    }

    /// Capacity of uplink `i` in bytes/second.
    #[inline]
    pub fn link_bytes_per_sec(&self, i: usize) -> u64 {
        self.ports[i].link().bytes_per_sec
    }

    /// The uplink with the fewest queued bytes (lowest index on ties) —
    /// the "shortest queue" both TLB rules route to.
    pub fn shortest_bytes(&self) -> usize {
        assert!(
            !self.ports.is_empty(),
            "PortView::shortest_bytes on a leaf with no uplink ports \
             (build the topology with at least one spine)"
        );
        let first = self.nth_live(0);
        let mut best = first;
        let mut best_bytes = self.ports[first].len_bytes();
        for (i, p) in self.ports.iter().enumerate().skip(first + 1) {
            if !self.is_live(i) {
                continue;
            }
            let b = p.len_bytes();
            if b < best_bytes {
                best = i;
                best_bytes = b;
            }
        }
        best
    }

    /// The uplink with the fewest queued bytes, breaking ties uniformly at
    /// random. Deterministic tie-breaking would herd every decision onto
    /// the lowest-indexed port whenever queues equalize (the common case
    /// under DCTCP's shallow queues), synchronizing flows onto one uplink —
    /// the classic pitfall randomized "power of choices" schemes avoid.
    pub fn shortest_bytes_rand(&self, rng: &mut tlb_engine::SimRng) -> usize {
        assert!(
            !self.ports.is_empty(),
            "PortView::shortest_bytes_rand on a leaf with no uplink ports \
             (build the topology with at least one spine)"
        );
        let first = self.nth_live(0);
        let mut best = first;
        let mut best_bytes = self.ports[first].len_bytes();
        let mut ties = 1u64;
        for (i, p) in self.ports.iter().enumerate().skip(first + 1) {
            if !self.is_live(i) {
                continue;
            }
            let b = p.len_bytes();
            if b < best_bytes {
                best = i;
                best_bytes = b;
                ties = 1;
            } else if b == best_bytes {
                // Reservoir sampling over the tied minima.
                ties += 1;
                if rng.gen_range(ties) == 0 {
                    best = i;
                }
            }
        }
        best
    }

    /// The uplink with the fewest queued packets (lowest index on ties).
    pub fn shortest_pkts(&self) -> usize {
        assert!(
            !self.ports.is_empty(),
            "PortView::shortest_pkts on a leaf with no uplink ports \
             (build the topology with at least one spine)"
        );
        let first = self.nth_live(0);
        let mut best = first;
        let mut best_len = self.ports[first].len_pkts();
        for (i, p) in self.ports.iter().enumerate().skip(first + 1) {
            if !self.is_live(i) {
                continue;
            }
            let l = p.len_pkts();
            if l < best_len {
                best = i;
                best_len = l;
            }
        }
        best
    }

    /// Mean *live* uplink capacity (bytes/s); TLB's model term `C` under
    /// (possibly asymmetric) heterogeneous uplinks.
    pub fn mean_capacity(&self) -> f64 {
        let sum: u64 = self
            .ports
            .iter()
            .enumerate()
            .filter(|(i, _)| self.is_live(*i))
            .map(|(_, p)| p.link().bytes_per_sec)
            .sum();
        sum as f64 / self.n_live() as f64
    }
}

/// A leaf-switch load-balancing scheme.
///
/// Implementations exist for the paper's baselines (`tlb-lb`: ECMP, RPS,
/// Presto, LetFlow, DRILL, CONGA-lite) and for TLB itself (`tlb-core`).
pub trait LoadBalancer: Send {
    /// Human-readable scheme name, used in reports and figures.
    fn name(&self) -> &'static str;

    /// Pick the uplink for an upstream packet. Called for **every** packet a
    /// local host sends through this leaf (data, ACKs of reverse flows, and
    /// SYN/FIN control packets — the latter drive TLB's flow counting).
    fn choose_uplink(
        &mut self,
        pkt: &Packet,
        view: PortView<'_>,
        now: SimTime,
        rng: &mut SimRng,
    ) -> usize;

    /// Periodic control-plane work (e.g. TLB's granularity recomputation and
    /// idle-flow sampling). Called every [`LoadBalancer::tick_interval`]
    /// when that returns `Some`.
    fn on_tick(&mut self, _view: PortView<'_>, _now: SimTime) {}

    /// How often [`LoadBalancer::on_tick`] should run; `None` disables it.
    fn tick_interval(&self) -> Option<SimTime> {
        None
    }

    /// Bytes of switch state the scheme maintains right now (flow tables,
    /// counters). Used to reproduce Fig. 15(b)'s memory-overhead comparison.
    fn state_bytes(&self) -> usize {
        0
    }

    /// The current long-flow switching threshold in bytes, for schemes that
    /// have one (TLB). `None` for everything else; `Some(u64::MAX)` encodes
    /// an infinite (pinning) threshold. Used by diagnostics and the Fig. 7
    /// harness.
    fn q_threshold(&self) -> Option<u64> {
        None
    }

    /// How many times the scheme rerouted an established long flow, for
    /// schemes that distinguish the case (TLB: long flows move only when
    /// their current uplink's queue crosses `q_th`). `None` for schemes
    /// without the notion. The scenario fuzzer's reroute oracle reads this.
    fn long_reroutes(&self) -> Option<u64> {
        None
    }

    /// How many times the scheme was *forced* off a cached port because a
    /// failure took it down (the liveness mask cleared its bit), for
    /// schemes that cache per-flow/flowlet ports. Kept separate from
    /// [`LoadBalancer::long_reroutes`] so the fuzzer's pinned-TLB
    /// zero-*voluntary*-reroute oracle stays strict under failure
    /// schedules. `None` for schemes without cached ports.
    fn forced_reroutes(&self) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::QueueCfg;
    use tlb_net::{FlowId, HostId, LinkProps};

    fn ports(lens: &[usize]) -> Vec<OutPort> {
        let link = LinkProps::gbps(1.0, SimTime::ZERO);
        let cfg = QueueCfg {
            capacity_pkts: 1024,
            ecn_threshold_pkts: None,
        };
        lens.iter()
            .map(|&n| {
                let mut p = OutPort::new(link, cfg);
                for s in 0..n {
                    p.enqueue(
                        Packet::data(
                            FlowId(0),
                            HostId(0),
                            HostId(1),
                            s as u32,
                            1460,
                            40,
                            SimTime::ZERO,
                        ),
                        SimTime::ZERO,
                    );
                }
                p
            })
            .collect()
    }

    #[test]
    fn shortest_picks_min() {
        let ps = ports(&[3, 1, 2]);
        let v = PortView::new(&ps);
        assert_eq!(v.shortest_bytes(), 1);
        assert_eq!(v.shortest_pkts(), 1);
    }

    #[test]
    fn shortest_breaks_ties_low_index() {
        let ps = ports(&[2, 1, 1]);
        let v = PortView::new(&ps);
        assert_eq!(v.shortest_bytes(), 1);
    }

    #[test]
    #[should_panic(expected = "no uplink ports")]
    fn shortest_bytes_rejects_empty_view() {
        PortView::new(&[]).shortest_bytes();
    }

    #[test]
    #[should_panic(expected = "no uplink ports")]
    fn shortest_pkts_rejects_empty_view() {
        PortView::new(&[]).shortest_pkts();
    }

    #[test]
    #[should_panic(expected = "no uplink ports")]
    fn shortest_bytes_rand_rejects_empty_view() {
        let mut rng = tlb_engine::SimRng::new(1);
        PortView::new(&[]).shortest_bytes_rand(&mut rng);
    }

    #[test]
    fn mask_skips_dead_ports() {
        let ps = ports(&[3, 1, 2, 0]);
        // Ports 1 and 3 dead: shortest must come from {0, 2}.
        let v = PortView::with_mask(&ps, 0b0101);
        assert_eq!(v.n_live(), 2);
        assert!(v.is_live(0) && !v.is_live(1) && v.is_live(2) && !v.is_live(3));
        assert_eq!(v.nth_live(0), 0);
        assert_eq!(v.nth_live(1), 2);
        assert_eq!(v.shortest_bytes(), 2);
        assert_eq!(v.shortest_pkts(), 2);
        let mut rng = tlb_engine::SimRng::new(7);
        assert_eq!(v.shortest_bytes_rand(&mut rng), 2);
        // Dead port 0: the first-live seed moves off index 0 and the
        // empty live port 3 wins.
        let w = PortView::with_mask(&ps, 0b1010);
        assert_eq!(w.shortest_bytes(), 3);
    }

    #[test]
    fn full_mask_matches_unmasked() {
        let ps = ports(&[5, 2, 7, 2, 2]);
        let a = PortView::new(&ps);
        let b = PortView::with_mask(&ps, PortView::full_mask(ps.len()));
        assert_eq!(a.mask(), b.mask());
        assert_eq!(a.shortest_bytes(), b.shortest_bytes());
        // Identical RNG consumption on the randomized tie-break.
        let mut r1 = tlb_engine::SimRng::new(9);
        let mut r2 = tlb_engine::SimRng::new(9);
        for _ in 0..200 {
            assert_eq!(
                a.shortest_bytes_rand(&mut r1),
                b.shortest_bytes_rand(&mut r2)
            );
        }
    }

    #[test]
    #[should_panic(expected = "no live uplink")]
    fn all_dead_mask_rejected() {
        let ps = ports(&[1, 2]);
        PortView::with_mask(&ps, 0b100); // only out-of-range bit set
    }

    #[test]
    fn view_reports_lengths() {
        let ps = ports(&[0, 4]);
        let v = PortView::new(&ps);
        assert_eq!(v.n_ports(), 2);
        assert_eq!(v.qlen_pkts(0), 0);
        assert_eq!(v.qlen_pkts(1), 4);
        assert_eq!(v.qlen_bytes(1), 6000);
        assert_eq!(v.link_bytes_per_sec(0), 125_000_000);
        assert_eq!(v.mean_capacity(), 125_000_000.0);
    }
}

#[cfg(test)]
mod rand_tiebreak_tests {
    use super::*;
    use crate::port::QueueCfg;
    use tlb_engine::SimRng;
    use tlb_net::{FlowId, HostId, LinkProps, Packet};

    fn ports(lens: &[usize]) -> Vec<OutPort> {
        let link = LinkProps::gbps(1.0, SimTime::ZERO);
        let cfg = QueueCfg {
            capacity_pkts: 1024,
            ecn_threshold_pkts: None,
        };
        lens.iter()
            .map(|&n| {
                let mut p = OutPort::new(link, cfg);
                for s in 0..n {
                    p.enqueue(
                        Packet::data(
                            FlowId(0),
                            HostId(0),
                            HostId(1),
                            s as u32,
                            1460,
                            40,
                            SimTime::ZERO,
                        ),
                        SimTime::ZERO,
                    );
                }
                p
            })
            .collect()
    }

    #[test]
    fn rand_tiebreak_is_uniform_over_minima() {
        // Ports 1, 3, 4 tie at the minimum: each should win ~1/3 of calls.
        let ps = ports(&[5, 2, 7, 2, 2]);
        let v = PortView::new(&ps);
        let mut rng = SimRng::new(42);
        let mut counts = [0usize; 5];
        let n = 9000;
        for _ in 0..n {
            counts[v.shortest_bytes_rand(&mut rng)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[2], 0);
        for &i in &[1usize, 3, 4] {
            assert!(
                (2500..3500).contains(&counts[i]),
                "port {i} won {} of {n}: {counts:?}",
                counts[i]
            );
        }
    }

    #[test]
    fn rand_tiebreak_unique_minimum_is_deterministic() {
        let ps = ports(&[4, 1, 9]);
        let v = PortView::new(&ps);
        let mut rng = SimRng::new(1);
        for _ in 0..100 {
            assert_eq!(v.shortest_bytes_rand(&mut rng), 1);
        }
    }

    #[test]
    fn rand_tiebreak_single_port() {
        let ps = ports(&[3]);
        let v = PortView::new(&ps);
        let mut rng = SimRng::new(2);
        assert_eq!(v.shortest_bytes_rand(&mut rng), 0);
    }
}
