//! Per-flow switch state with idle purging.
//!
//! The paper's TLB keeps a flow table at the leaf switch and "samples the
//! flows periodically ... if no packet is received during the sampling
//! interval, the corresponding flow record is removed" (§5). [`FlowMap`] is
//! that table, reused by the flowlet-based baselines too. Keys are dense
//! [`FlowId`]s, so a cheap multiplicative hasher is both safe and fast.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use tlb_engine::SimTime;
use tlb_net::FlowId;

/// Fibonacci-multiplication hasher for small integer keys (FxHash-style).
/// Not DoS-resistant — keys are simulator-internal dense ids, never
/// attacker-controlled.
#[derive(Default)]
pub struct U64MulHasher(u64);

impl Hasher for U64MulHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic path (rarely taken for our u32 keys).
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.0 = (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 29;
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 29;
    }
}

type FastBuild = BuildHasherDefault<U64MulHasher>;

/// One record in the table: user state + last activity stamp.
#[derive(Clone, Copy, Debug)]
struct Slot<T> {
    state: T,
    last_seen: SimTime,
}

/// A flow table mapping [`FlowId`] to scheme-specific state `T`, with the
/// paper's periodic idle purge.
#[derive(Debug)]
pub struct FlowMap<T> {
    map: HashMap<u32, Slot<T>, FastBuild>,
    /// High-water mark of `map.capacity()`: the bucket array never shrinks,
    /// but `capacity()` itself dips when removals leave tombstones, so the
    /// resident-memory accounting tracks the peak explicitly.
    cap_peak: std::cell::Cell<usize>,
}

impl<T> Default for FlowMap<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FlowMap<T> {
    /// An empty table.
    pub fn new() -> FlowMap<T> {
        FlowMap {
            map: HashMap::default(),
            cap_peak: std::cell::Cell::new(0),
        }
    }

    /// Number of tracked flows.
    #[inline]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no flows are tracked.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Look up a flow without touching its activity stamp.
    #[inline]
    pub fn get(&self, flow: FlowId) -> Option<&T> {
        self.map.get(&flow.0).map(|s| &s.state)
    }

    /// Mutable lookup that refreshes the activity stamp.
    #[inline]
    pub fn touch(&mut self, flow: FlowId, now: SimTime) -> Option<&mut T> {
        self.map.get_mut(&flow.0).map(|s| {
            s.last_seen = now;
            &mut s.state
        })
    }

    /// Get-or-insert, refreshing the activity stamp either way.
    #[inline]
    pub fn touch_or_insert_with(
        &mut self,
        flow: FlowId,
        now: SimTime,
        default: impl FnOnce() -> T,
    ) -> &mut T {
        let slot = self.map.entry(flow.0).or_insert_with(|| Slot {
            state: default(),
            last_seen: now,
        });
        slot.last_seen = now;
        &mut slot.state
    }

    /// Remove a flow (e.g. on FIN). Returns its state if present.
    pub fn remove(&mut self, flow: FlowId) -> Option<T> {
        self.map.remove(&flow.0).map(|s| s.state)
    }

    /// The paper's sampling rule: drop every record idle since before
    /// `now - idle_timeout`. Returns how many were removed.
    pub fn purge_idle(&mut self, now: SimTime, idle_timeout: SimTime) -> usize {
        // Snapshot the allocation high-water mark before removals leave
        // tombstones that make `capacity()` under-report it.
        self.cap_peak
            .set(self.cap_peak.get().max(self.map.capacity()));
        let cutoff = now.saturating_sub(idle_timeout);
        let before = self.map.len();
        self.map.retain(|_, slot| slot.last_seen >= cutoff);
        before - self.map.len()
    }

    /// Iterate over (flow, state).
    pub fn iter(&self) -> impl Iterator<Item = (FlowId, &T)> {
        self.map.iter().map(|(&k, s)| (FlowId(k), &s.state))
    }

    /// Approximate resident size of the table in bytes (Fig. 15 memory
    /// accounting).
    ///
    /// Charged on **capacity**, not `len()`: the std `HashMap` (hashbrown)
    /// allocates a bucket array sized for ~8/7 of the usable capacity, each
    /// bucket holding one `(key, slot)` payload plus one control byte, and
    /// purging entries does not return that memory. Accounting on `len()`
    /// (the previous behaviour) understated resident bytes by the whole
    /// empty-bucket overhead right after a purge.
    pub fn state_bytes(&self) -> usize {
        self.cap_peak
            .set(self.cap_peak.get().max(self.map.capacity()));
        let per_bucket = std::mem::size_of::<(u32, Slot<T>)>() + 1;
        let buckets = self.cap_peak.get() * 8 / 7;
        buckets * per_bucket
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn insert_get_remove() {
        let mut m: FlowMap<u32> = FlowMap::new();
        assert!(m.is_empty());
        *m.touch_or_insert_with(FlowId(5), t(0), || 7) += 1;
        assert_eq!(m.get(FlowId(5)), Some(&8));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(FlowId(5)), Some(8));
        assert_eq!(m.get(FlowId(5)), None);
        assert_eq!(m.remove(FlowId(5)), None);
    }

    #[test]
    fn touch_refreshes_activity() {
        let mut m: FlowMap<()> = FlowMap::new();
        m.touch_or_insert_with(FlowId(1), t(0), || ());
        m.touch_or_insert_with(FlowId(2), t(0), || ());
        // Flow 1 stays active, flow 2 goes idle.
        m.touch(FlowId(1), t(600));
        let removed = m.purge_idle(t(1000), SimTime::from_micros(500));
        assert_eq!(removed, 1);
        assert!(m.get(FlowId(1)).is_some());
        assert!(m.get(FlowId(2)).is_none());
    }

    #[test]
    fn purge_keeps_recent() {
        let mut m: FlowMap<u8> = FlowMap::new();
        for i in 0..10 {
            m.touch_or_insert_with(FlowId(i), t(i as u64 * 100), || 0);
        }
        // At t=950 with a 500 us window, flows last seen before 450 us go.
        let removed = m.purge_idle(t(950), SimTime::from_micros(500));
        assert_eq!(removed, 5);
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn purge_everything_when_stale() {
        let mut m: FlowMap<u8> = FlowMap::new();
        for i in 0..4 {
            m.touch_or_insert_with(FlowId(i), t(0), || 0);
        }
        assert_eq!(m.purge_idle(t(10_000), SimTime::from_micros(500)), 4);
        assert!(m.is_empty());
    }

    #[test]
    fn state_bytes_scales_with_entries() {
        let mut m: FlowMap<u64> = FlowMap::new();
        assert_eq!(m.state_bytes(), 0);
        for i in 0..100 {
            m.touch_or_insert_with(FlowId(i), t(0), || 0);
        }
        assert!(m.state_bytes() >= 100 * std::mem::size_of::<u64>());
    }

    #[test]
    fn state_bytes_pins_the_capacity_bound() {
        let mut m: FlowMap<u64> = FlowMap::new();
        for i in 0..100 {
            m.touch_or_insert_with(FlowId(i), t(0), || 0);
        }
        // Lower bound: at least one (key, slot) payload + control byte per
        // usable capacity slot — strictly more than the old len-based
        // charge whenever the table has headroom.
        let per_entry = std::mem::size_of::<(u32, Slot<u64>)>() + 1;
        assert!(m.map.capacity() >= 100);
        assert!(
            m.state_bytes() >= m.map.capacity() * per_entry,
            "{} < {}",
            m.state_bytes(),
            m.map.capacity() * per_entry
        );

        // Resident memory does not shrink when entries are purged: the
        // bucket array is retained, so the charge must be too.
        let full = m.state_bytes();
        let removed = m.purge_idle(t(1_000_000), SimTime::from_micros(1));
        assert_eq!(removed, 100);
        assert!(m.is_empty());
        assert_eq!(
            m.state_bytes(),
            full,
            "purge must not change capacity-based accounting"
        );
    }

    #[test]
    fn midlife_boundary_crossing_state_survives_purge() {
        // The classification state TLB keeps in this table flips mid-life
        // when a flow's byte count crosses the 100 KB boundary. The table
        // must carry that mutated state across touches and across purges
        // that remove *other* flows.
        const THRESHOLD: u64 = 100_000;
        #[derive(Clone, Copy, Debug, PartialEq)]
        struct Cls {
            bytes: u64,
            long: bool,
        }
        let mut m: FlowMap<Cls> = FlowMap::new();
        let f = FlowId(1);
        m.touch_or_insert_with(f, t(0), || Cls {
            bytes: 99_000,
            long: false,
        });
        // 99 KB + 1 KB = exactly 100 KB: strictly-greater rule says short.
        // One more MSS crosses it.
        for (add, expect_long) in [(1_000u64, false), (1_460, true)] {
            let st = m.touch(f, t(1)).unwrap();
            st.bytes += add;
            st.long = st.bytes > THRESHOLD;
            assert_eq!(st.long, expect_long, "at {} bytes", st.bytes);
        }
        // An idle purge reclaiming another flow leaves the record intact.
        m.touch_or_insert_with(FlowId(2), t(0), || Cls {
            bytes: 0,
            long: false,
        });
        m.touch(f, t(2_000));
        m.purge_idle(t(2_000), SimTime::from_micros(500));
        assert_eq!(
            m.get(f),
            Some(&Cls {
                bytes: 101_460,
                long: true
            })
        );
        assert!(m.get(FlowId(2)).is_none());
    }

    #[test]
    fn iter_covers_all() {
        let mut m: FlowMap<u32> = FlowMap::new();
        for i in 0..5 {
            m.touch_or_insert_with(FlowId(i), t(0), || i * 10);
        }
        let mut seen: Vec<_> = m.iter().map(|(f, &v)| (f.0, v)).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 0), (1, 10), (2, 20), (3, 30), (4, 40)]);
    }

    #[test]
    fn hasher_distributes_dense_keys() {
        // Dense ids must not collapse to the same bucket chain: check the
        // hashes of 0..64 are all distinct.
        use std::hash::Hash;
        let build = FastBuild::default();
        let mut hashes: Vec<u64> = (0u32..64)
            .map(|k| {
                let mut h = <FastBuild as std::hash::BuildHasher>::build_hasher(&build);
                k.hash(&mut h);
                h.finish()
            })
            .collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 64);
    }
}
